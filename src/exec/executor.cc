#include "exec/executor.h"

#include <algorithm>

#include "common/hash.h"

namespace scx {

int64_t PartitionedData::TotalRows() const {
  int64_t n = 0;
  for (const auto& p : partitions) n += static_cast<int64_t>(p.size());
  return n;
}

int64_t PartitionedData::TotalBytes() const {
  int64_t n = 0;
  for (const auto& p : partitions) {
    for (const Row& r : p) {
      for (const Value& v : r) n += v.ByteWidth();
    }
  }
  return n;
}

std::vector<Row> PartitionedData::Gathered() const {
  std::vector<Row> out;
  for (const auto& p : partitions) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Row> CanonicalRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SameOutputs(const ExecMetrics& a, const ExecMetrics& b) {
  if (a.outputs.size() != b.outputs.size()) return false;
  for (const auto& [path, rows] : a.outputs) {
    auto it = b.outputs.find(path);
    if (it == b.outputs.end()) return false;
    if (CanonicalRows(rows) != CanonicalRows(it->second)) return false;
  }
  return true;
}

namespace {

/// Sorts rows in place by the given column positions (all ascending).
void SortRows(std::vector<Row>* rows, const std::vector<int>& positions) {
  std::sort(rows->begin(), rows->end(), [&](const Row& a, const Row& b) {
    for (int p : positions) {
      auto c = a[static_cast<size_t>(p)] <=> b[static_cast<size_t>(p)];
      if (c != 0) return c < 0;
    }
    return false;
  });
}

/// Deterministic synthetic cell value for (file, column, row).
Value SyntheticValue(const FileDef& file, int col_index, int64_t row_index) {
  const ColumnStats& cs = file.columns[static_cast<size_t>(col_index)];
  uint64_t h = Mix64(file.data_seed ^
                     (static_cast<uint64_t>(col_index) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     static_cast<uint64_t>(row_index));
  uint64_t domain = static_cast<uint64_t>(std::max<int64_t>(1, cs.distinct_count));
  uint64_t k = h % domain;
  switch (cs.type) {
    case DataType::kInt64:
      return Value::Int(static_cast<int64_t>(k) + 1);
    case DataType::kDouble:
      return Value::Real(static_cast<double>(k) * 0.5);
    case DataType::kString:
      return Value::Str("v" + std::to_string(k));
  }
  return Value::Int(0);
}

/// Running state for one aggregate over one group.
struct AggState {
  double dsum = 0;
  int64_t isum = 0;
  int64_t count = 0;
  Value minv;
  Value maxv;
  bool seen = false;
};

}  // namespace

Result<ExecMetrics> Executor::Execute(const PhysicalNodePtr& plan) {
  ExecMetrics metrics;
  spool_cache_.clear();
  SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(plan, &metrics));
  (void)ignored;
  return metrics;
}

Result<PartitionedData> Executor::Eval(const PhysicalNodePtr& node,
                                       ExecMetrics* metrics) {
  ++metrics->operator_invocations;
  switch (node->kind) {
    case PhysicalOpKind::kExtract:
      return EvalExtract(*node, metrics);

    case PhysicalOpKind::kFilter: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.resize(in.partitions.size());
      for (size_t p = 0; p < in.partitions.size(); ++p) {
        for (Row& r : in.partitions[p]) {
          bool pass = true;
          for (const BoundPredicate& pred : node->proto->predicates) {
            if (!pred.Evaluate(r, in.schema)) {
              pass = false;
              break;
            }
          }
          if (pass) out.partitions[p].push_back(std::move(r));
        }
      }
      return out;
    }

    case PhysicalOpKind::kProject: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      std::vector<int> positions;
      for (const auto& [src, dst] : node->proto->project_map) {
        (void)dst;
        positions.push_back(in.schema.PositionOf(src));
      }
      for (size_t p = 0; p < in.partitions.size(); ++p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row projected;
          projected.reserve(positions.size());
          for (int pos : positions) {
            projected.push_back(r[static_cast<size_t>(pos)]);
          }
          out.partitions[p].push_back(std::move(projected));
        }
      }
      return out;
    }

    case PhysicalOpKind::kCompute: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(in.partitions.size());
      const auto& items = node->proto->compute_items;
      for (size_t p = 0; p < in.partitions.size(); ++p) {
        out.partitions[p].reserve(in.partitions[p].size());
        for (const Row& r : in.partitions[p]) {
          Row computed;
          computed.reserve(items.size());
          for (const ComputeItem& item : items) {
            computed.push_back(item.expr->Evaluate(r, in.schema));
          }
          out.partitions[p].push_back(std::move(computed));
        }
      }
      return out;
    }

    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return EvalAggregate(*node, std::move(in));
    }

    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      SCX_ASSIGN_OR_RETURN(PartitionedData l, Eval(node->children[0], metrics));
      SCX_ASSIGN_OR_RETURN(PartitionedData r, Eval(node->children[1], metrics));
      return EvalJoin(*node, std::move(l), std::move(r));
    }

    case PhysicalOpKind::kUnionAll: {
      PartitionedData out;
      out.schema = node->proto->schema();
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      for (const PhysicalNodePtr& child : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(child, metrics));
        for (size_t p = 0; p < in.partitions.size(); ++p) {
          size_t dest = p % out.partitions.size();
          auto& sink = out.partitions[dest];
          sink.insert(sink.end(),
                      std::make_move_iterator(in.partitions[p].begin()),
                      std::make_move_iterator(in.partitions[p].end()));
        }
      }
      return out;
    }

    case PhysicalOpKind::kSpool: {
      auto it = spool_cache_.find(node.get());
      if (it != spool_cache_.end()) {
        ++metrics->spool_reads;
        return it->second;
      }
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_spooled += in.TotalBytes();
      ++metrics->spool_executions;
      ++metrics->spool_reads;
      spool_cache_[node.get()] = in;
      return in;
    }

    case PhysicalOpKind::kSpoolScan: {
      return Status::Internal("SpoolScan nodes are not produced");
    }

    case PhysicalOpKind::kOutput: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      std::vector<Row> rows = in.Gathered();
      metrics->rows_output += static_cast<int64_t>(rows.size());
      auto& sink = metrics->outputs[node->proto->output_path];
      sink.insert(sink.end(), rows.begin(), rows.end());
      return in;
    }

    case PhysicalOpKind::kSequence: {
      for (const PhysicalNodePtr& c : node->children) {
        SCX_ASSIGN_OR_RETURN(PartitionedData ignored, Eval(c, metrics));
        (void)ignored;
      }
      PartitionedData out;
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      return out;
    }

    case PhysicalOpKind::kHashExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/false);
    }
    case PhysicalOpKind::kMergeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      return Exchange(*node, std::move(in), metrics, /*preserve_order=*/true);
    }

    case PhysicalOpKind::kRangeExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      std::vector<int> positions = in.schema.PositionsOf(
          node->delivered.partitioning.range_cols);
      // Boundary computation by exact quantiles over the key multiset —
      // the simulation stand-in for SCOPE's sampling pass.
      std::vector<std::vector<Value>> keys;
      keys.reserve(static_cast<size_t>(in.TotalRows()));
      for (const auto& p : in.partitions) {
        for (const Row& r : p) {
          std::vector<Value> key;
          key.reserve(positions.size());
          for (int pos : positions) key.push_back(r[static_cast<size_t>(pos)]);
          keys.push_back(std::move(key));
        }
      }
      std::sort(keys.begin(), keys.end());
      std::vector<std::vector<Value>> boundaries;
      for (size_t i = 1; i < machines && !keys.empty(); ++i) {
        boundaries.push_back(keys[i * keys.size() / machines]);
      }
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.resize(machines);
      for (auto& p : in.partitions) {
        for (Row& r : p) {
          std::vector<Value> key;
          key.reserve(positions.size());
          for (int pos : positions) key.push_back(r[static_cast<size_t>(pos)]);
          size_t dest = static_cast<size_t>(
              std::upper_bound(boundaries.begin(), boundaries.end(), key) -
              boundaries.begin());
          out.partitions[dest].push_back(std::move(r));
        }
      }
      return out;
    }

    case PhysicalOpKind::kBroadcastExchange: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      std::vector<Row> all = in.Gathered();
      metrics->bytes_shuffled +=
          in.TotalBytes() * static_cast<int64_t>(machines);
      metrics->rows_shuffled +=
          in.TotalRows() * static_cast<int64_t>(machines);
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.assign(machines, all);
      return out;
    }

    case PhysicalOpKind::kGather: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      metrics->bytes_shuffled += in.TotalBytes();
      metrics->rows_shuffled += in.TotalRows();
      PartitionedData out;
      out.schema = in.schema;
      out.partitions.resize(1);
      out.partitions[0] = in.Gathered();
      if (!node->delivered.sort.Empty()) {
        SortRows(&out.partitions[0],
                 out.schema.PositionsOf(node->delivered.sort.cols));
      }
      return out;
    }

    case PhysicalOpKind::kSort: {
      SCX_ASSIGN_OR_RETURN(PartitionedData in, Eval(node->children[0], metrics));
      std::vector<int> positions =
          in.schema.PositionsOf(node->sort_spec.cols);
      for (auto& p : in.partitions) SortRows(&p, positions);
      return in;
    }
  }
  return Status::Internal("unhandled physical operator");
}

Result<PartitionedData> Executor::EvalExtract(const PhysicalNode& node,
                                              ExecMetrics* metrics) {
  const FileDef& file = node.proto->file;
  PartitionedData out;
  out.schema = node.proto->schema();
  size_t machines = static_cast<size_t>(cluster_.machines);
  out.partitions.resize(machines);

  std::vector<int> file_cols;
  for (const ColumnInfo& c : out.schema.columns()) {
    int idx = file.ColumnIndex(c.name);
    if (idx < 0) {
      return Status::ExecutionError("extract column " + c.name +
                                    " missing from file " + file.path);
    }
    file_cols.push_back(idx);
  }
  for (int64_t i = 0; i < file.row_count; ++i) {
    Row row;
    row.reserve(file_cols.size());
    for (int idx : file_cols) {
      row.push_back(SyntheticValue(file, idx, i));
    }
    out.partitions[static_cast<size_t>(i) % machines].push_back(
        std::move(row));
  }
  metrics->rows_extracted += file.row_count;
  return out;
}

Result<PartitionedData> Executor::EvalAggregate(const PhysicalNode& node,
                                                PartitionedData in) {
  const LogicalNode& proto = *node.proto;
  const bool local = proto.kind() == LogicalOpKind::kLocalGbAgg;
  const bool global = proto.kind() == LogicalOpKind::kGlobalGbAgg;

  std::vector<int> group_pos = in.schema.PositionsOf(proto.group_cols);
  struct AggIo {
    int arg_pos = -1;
    int hidden_pos = -1;  // global-Avg partial-count input
  };
  std::vector<AggIo> io(proto.aggregates.size());
  for (size_t i = 0; i < proto.aggregates.size(); ++i) {
    const AggregateDesc& a = proto.aggregates[i];
    if (!a.count_star) io[i].arg_pos = in.schema.PositionOf(a.arg);
    if (global && a.fn == AggFn::kAvg && a.hidden_count != 0) {
      io[i].hidden_pos = in.schema.PositionOf(a.hidden_count);
    }
  }

  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(in.partitions.size());

  for (size_t p = 0; p < in.partitions.size(); ++p) {
    std::map<std::vector<Value>, std::vector<AggState>> groups;
    for (const Row& r : in.partitions[p]) {
      std::vector<Value> key;
      key.reserve(group_pos.size());
      for (int gp : group_pos) key.push_back(r[static_cast<size_t>(gp)]);
      auto [it, inserted] =
          groups.try_emplace(std::move(key), proto.aggregates.size());
      std::vector<AggState>& states = it->second;
      for (size_t i = 0; i < proto.aggregates.size(); ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        AggState& s = states[i];
        if (global) {
          // Merge partial states: Sum/Count partials are summed (fn was
          // rewritten to kSum by the split rule); Min/Max fold; Avg sums
          // the partial sums and the partial counts.
          const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
          switch (a.fn) {
            case AggFn::kSum:
              if (v.is_int()) {
                s.isum += v.as_int();
              } else {
                s.dsum += v.AsNumeric();
              }
              break;
            case AggFn::kMin:
              if (!s.seen || v < s.minv) s.minv = v;
              break;
            case AggFn::kMax:
              if (!s.seen || v > s.maxv) s.maxv = v;
              break;
            case AggFn::kAvg: {
              s.dsum += v.AsNumeric();
              s.count +=
                  r[static_cast<size_t>(io[i].hidden_pos)].as_int();
              break;
            }
            case AggFn::kCount:
              s.isum += v.as_int();
              break;
          }
          s.seen = true;
          continue;
        }
        // Full or local aggregation over raw rows.
        switch (a.fn) {
          case AggFn::kSum: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            break;
          }
          case AggFn::kCount:
            ++s.count;
            break;
          case AggFn::kMin: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v < s.minv) s.minv = v;
            break;
          }
          case AggFn::kMax: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            if (!s.seen || v > s.maxv) s.maxv = v;
            break;
          }
          case AggFn::kAvg: {
            const Value& v = r[static_cast<size_t>(io[i].arg_pos)];
            s.dsum += v.AsNumeric();
            ++s.count;
            break;
          }
        }
        s.seen = true;
      }
    }

    for (auto& [key, states] : groups) {
      Row row = key;
      for (size_t i = 0; i < proto.aggregates.size(); ++i) {
        const AggregateDesc& a = proto.aggregates[i];
        const AggState& s = states[i];
        if (global) {
          switch (a.fn) {
            case AggFn::kSum:
            case AggFn::kCount:
              if (a.out_type == DataType::kDouble) {
                row.push_back(Value::Real(s.dsum));
              } else {
                row.push_back(Value::Int(s.isum));
              }
              break;
            case AggFn::kMin:
              row.push_back(s.minv);
              break;
            case AggFn::kMax:
              row.push_back(s.maxv);
              break;
            case AggFn::kAvg:
              row.push_back(Value::Real(
                  s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0));
              break;
          }
          continue;
        }
        switch (a.fn) {
          case AggFn::kSum:
            if (a.out_type == DataType::kDouble) {
              row.push_back(Value::Real(s.dsum));
            } else {
              row.push_back(Value::Int(s.isum));
            }
            break;
          case AggFn::kCount:
            row.push_back(Value::Int(s.count));
            break;
          case AggFn::kMin:
            row.push_back(s.minv);
            break;
          case AggFn::kMax:
            row.push_back(s.maxv);
            break;
          case AggFn::kAvg:
            if (local) {
              row.push_back(Value::Real(s.dsum));  // partial sum (out)
            } else {
              row.push_back(Value::Real(
                  s.count > 0 ? s.dsum / static_cast<double>(s.count) : 0));
            }
            break;
        }
        if (local && a.hidden_count != 0) {
          row.push_back(Value::Int(s.count));  // partial count (hidden)
        }
      }
      out.partitions[p].push_back(std::move(row));
    }
  }

  // Stream aggregates deliver rows ordered on their chosen sort order.
  if (node.kind == PhysicalOpKind::kStreamAgg && !node.sort_spec.Empty()) {
    std::vector<int> positions = out.schema.PositionsOf(node.sort_spec.cols);
    for (auto& p : out.partitions) SortRows(&p, positions);
  }
  return out;
}

Result<PartitionedData> Executor::EvalJoin(const PhysicalNode& node,
                                           PartitionedData left,
                                           PartitionedData right) {
  const LogicalNode& proto = *node.proto;
  if (left.partitions.size() != right.partitions.size()) {
    return Status::ExecutionError(
        "join inputs have different partition counts (" +
        std::to_string(left.partitions.size()) + " vs " +
        std::to_string(right.partitions.size()) + ")");
  }
  std::vector<int> lpos, rpos;
  for (const auto& [l, r] : proto.join_keys) {
    lpos.push_back(left.schema.PositionOf(l));
    rpos.push_back(right.schema.PositionOf(r));
  }
  PartitionedData out;
  out.schema = proto.schema();
  out.partitions.resize(left.partitions.size());

  for (size_t p = 0; p < left.partitions.size(); ++p) {
    std::map<std::vector<Value>, std::vector<const Row*>> table;
    for (const Row& r : right.partitions[p]) {
      std::vector<Value> key;
      key.reserve(rpos.size());
      for (int pos : rpos) key.push_back(r[static_cast<size_t>(pos)]);
      table[std::move(key)].push_back(&r);
    }
    for (const Row& l : left.partitions[p]) {
      std::vector<Value> key;
      key.reserve(lpos.size());
      for (int pos : lpos) key.push_back(l[static_cast<size_t>(pos)]);
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (const Row* r : it->second) {
        Row joined = l;
        joined.insert(joined.end(), r->begin(), r->end());
        bool pass = true;
        for (const BoundPredicate& pred : proto.predicates) {
          if (!pred.Evaluate(joined, out.schema)) {
            pass = false;
            break;
          }
        }
        if (pass) out.partitions[p].push_back(std::move(joined));
      }
    }
  }
  return out;
}

PartitionedData Executor::Exchange(const PhysicalNode& node,
                                   PartitionedData in, ExecMetrics* metrics,
                                   bool preserve_order) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  PartitionedData out;
  out.schema = in.schema;
  out.partitions.resize(machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.exchange_cols.ToVector());
  metrics->bytes_shuffled += in.TotalBytes();
  metrics->rows_shuffled += in.TotalRows();
  for (auto& p : in.partitions) {
    for (Row& r : p) {
      size_t dest = static_cast<size_t>(HashRowKey(r, positions) % machines);
      out.partitions[dest].push_back(std::move(r));
    }
  }
  if (preserve_order && !node.delivered.sort.Empty()) {
    std::vector<int> sort_pos =
        out.schema.PositionsOf(node.delivered.sort.cols);
    for (auto& p : out.partitions) SortRows(&p, sort_pos);
  }
  return out;
}

}  // namespace scx
