// The batch-native execution pipeline (cluster.batch_size > 1): operators
// consume and produce BatchData — immutable shared columns plus selection
// vectors — end to end. Rows exist only at Output (the sanctioned sink
// conversion) and at operators that explicitly bridge back to the row path
// (ExecMetrics::batch_pipeline_breaks). The legacy row pipeline in
// executor.cc stays verbatim at batch_size 1 as the differential anchor;
// every loop here is constructed to yield bit-identical raw outputs and
// legacy counters — see docs/architecture.md §14 for the argument.

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/hash.h"
#include "exec/exec_detail.h"
#include "exec/executor.h"
#include "exec/row_key_table.h"
#include "exec/vector_kernels.h"
#include "plan/expr_cse.h"

namespace scx {

namespace {

using exec_detail::AggState;
using exec_detail::FinalizeAggCell;
using exec_detail::SyntheticValue;

/// Total batch_size-chunks needed to process every partition's live rows —
/// the batch pipeline's batches_evaluated accounting (the pipeline operates
/// on whole partitions, so this is bookkeeping, not a physical chunking).
int64_t LiveBatches(const BatchData& d, size_t batch_size) {
  int64_t n = 0;
  for (const BatchPartition& p : d.partitions) {
    n += NumBatches(p.LiveRows(), batch_size);
  }
  return n;
}

ColumnPtr MakeColumn(ColumnVector&& col) {
  return std::make_shared<ColumnVector>(std::move(col));
}

/// The partition's column at `pos` with only live rows: shared as-is when
/// the partition is unfiltered, gathered through the selection otherwise.
ColumnPtr DenseColumn(const BatchPartition& part, int pos) {
  const ColumnPtr& col = part.columns[static_cast<size_t>(pos)];
  if (!part.filtered) return col;
  return MakeColumn(GatherColumn(*col, part.sel));
}

/// All partitions' live rows concatenated (partition order, live-row order)
/// into one dense partition — the columnar TakeGathered.
BatchPartition ConcatLive(const BatchData& in) {
  BatchPartition out;
  const size_t width = in.schema.columns().size();
  size_t total = 0;
  for (const BatchPartition& p : in.partitions) total += p.LiveRows();
  out.rows = total;
  out.columns.reserve(width);
  for (size_t j = 0; j < width; ++j) {
    ColumnVector acc;
    acc.Reserve(total);
    for (const BatchPartition& p : in.partitions) {
      acc.AppendColumn(*p.columns[j], p.Selection());
    }
    out.columns.push_back(MakeColumn(std::move(acc)));
  }
  return out;
}

/// The partition's live rows sorted on `positions` (all ascending), as a
/// dense partition. Sorts a permutation of live physical indices with the
/// exact cell comparator of the row path's SortRows: std::sort's control
/// flow depends only on the comparator outcomes and the element count,
/// both identical to sorting the materialized rows, so the resulting row
/// order is bit-identical to the legacy path's.
BatchPartition SortedPartition(const BatchPartition& part,
                               const std::vector<int>& positions) {
  SelectionVector perm;
  if (part.filtered) {
    perm = part.sel;
  } else {
    perm.resize(part.rows);
    for (uint32_t i = 0; i < static_cast<uint32_t>(part.rows); ++i) {
      perm[i] = i;
    }
  }
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (int p : positions) {
      const ColumnVector& col = *part.columns[static_cast<size_t>(p)];
      int c = CompareCells(col, a, col, b);
      if (c != 0) return c < 0;
    }
    return false;
  });
  BatchPartition out;
  out.rows = perm.size();
  out.columns.reserve(part.columns.size());
  for (const ColumnPtr& col : part.columns) {
    out.columns.push_back(MakeColumn(GatherColumn(*col, perm)));
  }
  return out;
}

/// Cell as double with ScalarExpr/Value::AsNumeric semantics (typed fast
/// paths; the kValue fallback aborts on strings exactly like the row path).
inline double NumericCell(const ColumnVector& col, size_t r) {
  switch (col.rep()) {
    case ColumnRep::kInt64:
      return static_cast<double>(col.ints()[r]);
    case ColumnRep::kDouble:
      return col.doubles()[r];
    default:
      return col.ValueAt(r).AsNumeric();
  }
}

/// Column-major aggregate update: folds one whole argument column into the
/// per-group states of aggregate `agg_index`. `ids[r]` is row r's dense
/// group id. Per (group, aggregate) pair the update order is the column's
/// row order — exactly the row-at-a-time loop's order, so every partial
/// (including float sums) is bit-identical to the legacy path.
void UpdateAggColumnar(const AggregateDesc& a, bool global,
                       const ColumnVector* arg, const ColumnVector* hidden,
                       const std::vector<size_t>& ids, size_t naggs,
                       size_t agg_index, std::vector<AggState>* states) {
  const size_t n = ids.size();
  auto state = [&](size_t r) -> AggState& {
    return (*states)[ids[r] * naggs + agg_index];
  };
  switch (a.fn) {
    case AggFn::kSum:
      // Same in the merge (global) and raw-row cases: partial sums were
      // rewritten to kSum by the split rule.
      switch (arg->rep()) {
        case ColumnRep::kInt64: {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
          break;
        }
        case ColumnRep::kDouble: {
          const double* v = arg->doubles().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.dsum += v[r];
            s.seen = true;
          }
          break;
        }
        default:
          for (size_t r = 0; r < n; ++r) {
            Value v = arg->ValueAt(r);
            AggState& s = state(r);
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            s.seen = true;
          }
          break;
      }
      break;
    case AggFn::kCount:
      if (global) {
        // Merging partial counts: sum the int column.
        if (arg->rep() == ColumnRep::kInt64) {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += arg->ValueAt(r).as_int();
            s.seen = true;
          }
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          AggState& s = state(r);
          ++s.count;
          s.seen = true;
        }
      }
      break;
    case AggFn::kMin:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v < s.minv) s.minv = v;
        s.seen = true;
      }
      break;
    case AggFn::kMax:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v > s.maxv) s.maxv = v;
        s.seen = true;
      }
      break;
    case AggFn::kAvg:
      for (size_t r = 0; r < n; ++r) {
        AggState& s = state(r);
        s.dsum += NumericCell(*arg, r);
        if (global) {
          s.count += hidden->rep() == ColumnRep::kInt64
                         ? hidden->ints()[r]
                         : hidden->ValueAt(r).as_int();
        } else {
          ++s.count;
        }
        s.seen = true;
      }
      break;
  }
}

/// Runs one partition through a fused chain schedule. Filter stages narrow
/// the selection over the current physical row space without touching a
/// column; a compute stage that actually evaluates (has_eval) first
/// compacts the live rows — gathering every still-needed column through
/// the selection — so expressions run densely over exactly the rows the
/// row-at-a-time path evaluates them on (never on filtered-out rows, which
/// could abort on type errors the legacy path never sees).
BatchPartition RunChain(const PipelineSchedule& sched,
                        const std::vector<int>& col_pos,
                        const BatchPartition& in, size_t batch_size,
                        int64_t* batches) {
  const size_t nsteps = sched.steps.size();
  std::vector<ColumnPtr> cols(nsteps);
  for (size_t s = 0; s < nsteps; ++s) {
    if (col_pos[s] >= 0) {
      cols[s] = in.columns[static_cast<size_t>(col_pos[s])];
    }
  }
  size_t rows = in.rows;
  SelectionVector sel = in.sel;
  bool filtered = in.filtered;
  for (size_t si = 0; si < sched.stages.size(); ++si) {
    const PipelineStage& stage = sched.stages[si];
    *batches += NumBatches(filtered ? sel.size() : rows, batch_size);
    if (stage.is_filter) {
      for (const PredStep& ps : stage.preds) {
        SelectByPredicate(*cols[static_cast<size_t>(ps.lhs)],
                          ps.rhs >= 0 ? cols[static_cast<size_t>(ps.rhs)].get()
                                      : nullptr,
                          ps.literal, ps.op, rows, /*first=*/!filtered, &sel);
        filtered = true;
        // Later predicates of this stage select from an empty set; the row
        // path never evaluates them on any row either.
        if (sel.empty()) break;
      }
      continue;
    }
    if (stage.has_eval && filtered) {
      for (size_t s = 0; s < nsteps; ++s) {
        if (cols[s] == nullptr) continue;
        if (sched.last_use[s] < static_cast<int>(si)) {
          cols[s].reset();  // dead beyond this point; stop copying it
          continue;
        }
        cols[s] = MakeColumn(GatherColumn(*cols[s], sel));
      }
      rows = sel.size();
      sel.clear();
      filtered = false;
    }
    for (int e : stage.eval_steps) {
      const ExprStep& step = sched.steps[static_cast<size_t>(e)];
      switch (step.kind) {
        case ScalarExpr::Kind::kColumn:
          break;  // bound from the chain input above
        case ScalarExpr::Kind::kLiteral:
          cols[static_cast<size_t>(e)] =
              MakeColumn(SplatColumn(step.literal, rows));
          break;
        case ScalarExpr::Kind::kBinary: {
          auto col = std::make_shared<ColumnVector>();
          EvalBinaryColumns(step.op, *cols[static_cast<size_t>(step.lhs)],
                            *cols[static_cast<size_t>(step.rhs)], rows,
                            col.get());
          cols[static_cast<size_t>(e)] = std::move(col);
          break;
        }
      }
    }
  }
  BatchPartition out;
  out.rows = rows;
  out.sel = std::move(sel);
  out.filtered = filtered;
  if (sched.reshaped) {
    out.columns.reserve(sched.output_steps.size());
    for (int s : sched.output_steps) {
      out.columns.push_back(cols[static_cast<size_t>(s)]);
    }
  } else {
    out.columns = in.columns;  // filters only: share, just narrow the sel
  }
  return out;
}

bool IsChainOp(PhysicalOpKind kind) {
  return kind == PhysicalOpKind::kFilter || kind == PhysicalOpKind::kCompute ||
         kind == PhysicalOpKind::kProject;
}

}  // namespace

Result<BatchData> Executor::EvalBatch(const PhysicalNodePtr& node,
                                      ExecMetrics* metrics) {
  ++metrics->operator_invocations;
  switch (node->kind) {
    case PhysicalOpKind::kExtract:
      return EvalExtractBatch(*node, metrics);

    case PhysicalOpKind::kFilter:
    case PhysicalOpKind::kProject:
    case PhysicalOpKind::kCompute:
      return EvalChainBatch(node, metrics);

    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return EvalAggregateBatch(*node, std::move(in), metrics);
    }

    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      SCX_ASSIGN_OR_RETURN(BatchData l, EvalBatch(node->children[0], metrics));
      SCX_ASSIGN_OR_RETURN(BatchData r, EvalBatch(node->children[1], metrics));
      return EvalJoinBatch(*node, std::move(l), std::move(r), metrics);
    }

    case PhysicalOpKind::kUnionAll: {
      BatchData out;
      out.schema = node->proto->schema();
      const size_t machines = static_cast<size_t>(cluster_.machines);
      const size_t width = out.schema.columns().size();
      std::vector<std::vector<ColumnVector>> acc(machines);
      for (auto& a : acc) a.resize(width);
      std::vector<size_t> rows_acc(machines, 0);
      for (const PhysicalNodePtr& child : node->children) {
        SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(child, metrics));
        for (size_t p = 0; p < in.partitions.size(); ++p) {
          const BatchPartition& part = in.partitions[p];
          size_t dest = p % machines;
          rows_acc[dest] += part.LiveRows();
          for (size_t j = 0; j < width; ++j) {
            acc[dest][j].AppendColumn(*part.columns[j], part.Selection());
          }
        }
      }
      out.partitions.resize(machines);
      for (size_t d = 0; d < machines; ++d) {
        BatchPartition& part = out.partitions[d];
        part.rows = rows_acc[d];
        part.columns.reserve(width);
        for (size_t j = 0; j < width; ++j) {
          part.columns.push_back(MakeColumn(std::move(acc[d][j])));
        }
      }
      return out;
    }

    case PhysicalOpKind::kSpool: {
      auto it = batch_spool_cache_.find(node.get());
      if (it != batch_spool_cache_.end()) {
        ++metrics->spool_reads;
        ++metrics->spool_cache_hits;
        // A hit copies shared_ptrs: every reader shares the materialized
        // immutable columns; no row (or cell) is ever copied.
        return it->second;
      }
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      // Materialize compacted so every consumer reads dense columns.
      RunPartitions(in.partitions.size(), [&](size_t p) {
        in.partitions[p] = CompactPartition(in.partitions[p]);
      });
      metrics->bytes_spooled += in.TotalLiveBytes();
      metrics->rows_spooled += in.TotalLiveRows();
      ++metrics->spool_executions;
      ++metrics->spool_reads;
      batch_spool_cache_[node.get()] = in;
      return in;
    }

    case PhysicalOpKind::kSpoolScan:
      // Rejected by ValidatePlan before execution; kept only so the
      // operator switch stays exhaustive.
      break;

    case PhysicalOpKind::kOutput: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      // The one sanctioned columns->rows conversion: the output sink is a
      // row container.
      size_t machines = in.partitions.size();
      std::vector<Row> rows;
      rows.reserve(static_cast<size_t>(in.TotalLiveRows()));
      for (const BatchPartition& part : in.partitions) {
        AppendPartitionRows(part, &rows);
      }
      metrics->rows_converted += static_cast<int64_t>(rows.size());
      metrics->rows_output += static_cast<int64_t>(rows.size());
      auto& sink = metrics->outputs[node->proto->output_path];
      sink.insert(sink.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      return out;
    }

    case PhysicalOpKind::kSequence: {
      for (const PhysicalNodePtr& c : node->children) {
        SCX_ASSIGN_OR_RETURN(BatchData ignored, EvalBatch(c, metrics));
        (void)ignored;
      }
      BatchData out;
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      return out;
    }

    case PhysicalOpKind::kHashExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return ExchangeBatch(*node, std::move(in), metrics,
                           /*preserve_order=*/false);
    }
    case PhysicalOpKind::kMergeExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return ExchangeBatch(*node, std::move(in), metrics,
                           /*preserve_order=*/true);
    }

    case PhysicalOpKind::kRangeExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      // The quantile boundary scan and range scatter stay row-based: this
      // is the pipeline's one genuine break, and what rows_converted /
      // batch_pipeline_breaks exist to make visible.
      ++metrics->batch_pipeline_breaks;
      const int64_t live = in.TotalLiveRows();
      PartitionedData rin;
      rin.schema = in.schema;
      rin.partitions.resize(in.partitions.size());
      RunPartitions(in.partitions.size(), [&](size_t p) {
        AppendPartitionRows(in.partitions[p], &rin.partitions[p]);
      });
      metrics->rows_converted += live;

      size_t machines = static_cast<size_t>(cluster_.machines);
      std::vector<int> positions = rin.schema.PositionsOf(
          node->delivered.partitioning.range_cols);
      // Boundary computation by exact quantiles over the key multiset —
      // the simulation stand-in for SCOPE's sampling pass. Verbatim from
      // the row path.
      std::vector<std::vector<std::vector<Value>>> part_keys(
          rin.partitions.size());
      RunPartitions(rin.partitions.size(), [&](size_t p) {
        part_keys[p].reserve(rin.partitions[p].size());
        for (const Row& r : rin.partitions[p]) {
          std::vector<Value> key;
          key.reserve(positions.size());
          for (int pos : positions) key.push_back(r[static_cast<size_t>(pos)]);
          part_keys[p].push_back(std::move(key));
        }
      });
      std::vector<std::vector<Value>> keys;
      keys.reserve(static_cast<size_t>(live));
      for (auto& pk : part_keys) {
        keys.insert(keys.end(), std::make_move_iterator(pk.begin()),
                    std::make_move_iterator(pk.end()));
      }
      std::sort(keys.begin(), keys.end());
      std::vector<std::vector<Value>> boundaries;
      for (size_t i = 1; i < machines && !keys.empty(); ++i) {
        boundaries.push_back(keys[i * keys.size() / machines]);
      }
      metrics->bytes_shuffled += rin.TotalBytes();
      metrics->rows_shuffled += live;
      PartitionedData shuffled = ScatterByDest(
          std::move(rin),
          [&](const std::vector<Row>& rows, std::vector<uint32_t>* dest) {
            for (size_t i = 0; i < rows.size(); ++i) {
              std::vector<Value> key;
              key.reserve(positions.size());
              for (int pos : positions) {
                key.push_back(rows[i][static_cast<size_t>(pos)]);
              }
              (*dest)[i] = static_cast<uint32_t>(
                  std::upper_bound(boundaries.begin(), boundaries.end(),
                                   key) -
                  boundaries.begin());
            }
          });
      // Bridge back into columns.
      BatchData out;
      out.schema = std::move(shuffled.schema);
      out.partitions.resize(shuffled.partitions.size());
      const size_t width = out.schema.columns().size();
      RunPartitions(shuffled.partitions.size(), [&](size_t p) {
        out.partitions[p] = PartitionFromRows(shuffled.partitions[p], width);
      });
      metrics->rows_converted += live;
      return out;
    }

    case PhysicalOpKind::kBroadcastExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      metrics->bytes_shuffled +=
          in.TotalLiveBytes() * static_cast<int64_t>(machines);
      metrics->rows_shuffled +=
          in.TotalLiveRows() * static_cast<int64_t>(machines);
      // One dense gathered copy; every machine shares its columns. The row
      // path copies the gathered rows machine-1 times — here the fan-out
      // is machines shared_ptr copies.
      BatchPartition all = ConcatLive(in);
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.assign(machines, all);
      return out;
    }

    case PhysicalOpKind::kGather: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      metrics->bytes_shuffled += in.TotalLiveBytes();
      metrics->rows_shuffled += in.TotalLiveRows();
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(1);
      in.schema = out.schema;  // ConcatLive reads the schema width
      out.partitions[0] = ConcatLive(in);
      if (!node->delivered.sort.Empty()) {
        out.partitions[0] = SortedPartition(
            out.partitions[0],
            out.schema.PositionsOf(node->delivered.sort.cols));
      }
      return out;
    }

    case PhysicalOpKind::kSort: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      std::vector<int> positions =
          in.schema.PositionsOf(node->sort_spec.cols);
      RunPartitions(in.partitions.size(), [&](size_t p) {
        in.partitions[p] = SortedPartition(in.partitions[p], positions);
      });
      return in;
    }
  }
  return Status::Internal("unhandled physical operator " +
                          std::string(PhysicalOpKindName(node->kind)));
}

Result<BatchData> Executor::EvalExtractBatch(const PhysicalNode& node,
                                             ExecMetrics* metrics) {
  const FileDef& file = node.proto->file;
  BatchData out;
  out.schema = node.proto->schema();
  size_t machines = static_cast<size_t>(cluster_.machines);
  out.partitions.resize(machines);

  std::vector<int> file_cols;
  for (const ColumnInfo& c : out.schema.columns()) {
    int idx = file.ColumnIndex(c.name);
    if (idx < 0) {
      return Status::ExecutionError("extract column " + c.name +
                                    " missing from file " + file.path);
    }
    file_cols.push_back(idx);
  }
  // Row i lands on machine i % machines; machine m synthesizes rows
  // m, m + machines, ... straight into columns — cell-for-cell the rows
  // the legacy extract builds, without ever materializing one.
  int64_t rows = file.row_count;
  RunPartitions(machines, [&](size_t m) {
    BatchPartition& part = out.partitions[m];
    const size_t width = file_cols.size();
    std::vector<ColumnVector> cols(width);
    int64_t count =
        rows > static_cast<int64_t>(m)
            ? (rows - static_cast<int64_t>(m) +
               static_cast<int64_t>(machines) - 1) /
                  static_cast<int64_t>(machines)
            : 0;
    for (size_t j = 0; j < width; ++j) {
      cols[j].Reserve(static_cast<size_t>(count));
      for (int64_t i = static_cast<int64_t>(m); i < rows;
           i += static_cast<int64_t>(machines)) {
        cols[j].AppendValue(SyntheticValue(file, file_cols[j], i));
      }
    }
    part.rows = static_cast<size_t>(count);
    part.columns.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      part.columns.push_back(MakeColumn(std::move(cols[j])));
    }
  });
  metrics->rows_extracted += rows;
  return out;
}

Result<BatchData> Executor::EvalChainBatch(const PhysicalNodePtr& head,
                                           ExecMetrics* metrics) {
  // Collect the maximal Filter/Compute/Project chain below (and including)
  // the head, top-down.
  std::vector<const PhysicalNode*> chain;
  PhysicalNodePtr cur = head;
  while (IsChainOp(cur->kind)) {
    chain.push_back(cur.get());
    cur = cur->children[0];
  }
  // EvalBatch already counted the head; the interior nodes are operator
  // invocations of their own, exactly as the per-node row path counts them.
  metrics->operator_invocations += static_cast<int64_t>(chain.size()) - 1;
  SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(cur, metrics));

  // Lower the chain bottom-up (execution order) into one fused schedule.
  std::vector<PipelineStageDesc> descs;
  descs.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    PipelineStageDesc desc;
    switch ((*it)->kind) {
      case PhysicalOpKind::kFilter:
        desc.predicates = &(*it)->proto->predicates;
        break;
      case PhysicalOpKind::kCompute:
        desc.items = &(*it)->proto->compute_items;
        break;
      default:
        desc.project = &(*it)->proto->project_map;
        break;
    }
    descs.push_back(desc);
  }
  PipelineSchedule sched = BuildPipelineSchedule(descs);
  metrics->exprs_deduped += sched.duplicates_eliminated;

  std::vector<int> col_pos(sched.steps.size(), -1);
  for (size_t s = 0; s < sched.steps.size(); ++s) {
    if (sched.steps[s].kind == ScalarExpr::Kind::kColumn) {
      col_pos[s] = in.schema.PositionOf(sched.steps[s].column);
    }
  }

  BatchData out;
  out.schema = chain.front()->proto->schema();
  out.partitions.resize(in.partitions.size());
  // batches_evaluated depends on per-stage selectivity, so workers count
  // into their own slot and the master sums in partition order.
  std::vector<int64_t> part_batches(in.partitions.size(), 0);
  RunPartitions(in.partitions.size(), [&](size_t p) {
    out.partitions[p] = RunChain(sched, col_pos, in.partitions[p],
                                 batch_size_, &part_batches[p]);
  });
  for (int64_t b : part_batches) metrics->batches_evaluated += b;
  return out;
}

Result<BatchData> Executor::EvalAggregateBatch(const PhysicalNode& node,
                                               BatchData in,
                                               ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  const bool local = proto.kind() == LogicalOpKind::kLocalGbAgg;
  const bool global = proto.kind() == LogicalOpKind::kGlobalGbAgg;

  std::vector<int> group_pos = in.schema.PositionsOf(proto.group_cols);
  struct AggIo {
    int arg_pos = -1;
    int hidden_pos = -1;  // global-Avg partial-count input
  };
  const size_t naggs = proto.aggregates.size();
  std::vector<AggIo> io(naggs);
  for (size_t i = 0; i < naggs; ++i) {
    const AggregateDesc& a = proto.aggregates[i];
    if (!a.count_star) io[i].arg_pos = in.schema.PositionOf(a.arg);
    if (global && a.fn == AggFn::kAvg && a.hidden_count != 0) {
      io[i].hidden_pos = in.schema.PositionOf(a.hidden_count);
    }
  }

  BatchData out;
  out.schema = proto.schema();
  out.partitions.resize(in.partitions.size());
  metrics->batches_evaluated += LiveBatches(in, batch_size_);

  const size_t in_width = in.schema.columns().size();
  RunPartitions(in.partitions.size(), [&](size_t p) {
    const BatchPartition& part = in.partitions[p];
    const size_t n = part.LiveRows();
    // Live (dense) views of the referenced columns only: shared when the
    // partition is unfiltered, gathered through the selection otherwise.
    std::vector<ColumnPtr> dense(in_width);
    auto live = [&](int pos) -> const ColumnVector* {
      if (pos < 0) return nullptr;
      ColumnPtr& col = dense[static_cast<size_t>(pos)];
      if (col == nullptr) col = DenseColumn(part, pos);
      return col.get();
    };
    for (int gp : group_pos) live(gp);

    // Group-id assignment: hash whole key columns, then probe in row order
    // — the dense ids and insertion order of the legacy per-row loop.
    std::vector<uint64_t> hashes(n, kRowKeySeed);
    for (int gp : group_pos) {
      HashColumnCells(*live(gp), n, hashes.data());
    }
    RowKeyTable table(n);
    std::vector<AggState> states;  // naggs states per group, group-major
    std::vector<size_t> ids(n);
    for (size_t r = 0; r < n; ++r) {
      auto [id, inserted] = table.FindOrInsertHashed(
          hashes[r],
          [&](const Row& key) {
            for (size_t j = 0; j < group_pos.size(); ++j) {
              if (!live(group_pos[j])->CellEquals(r, key[j])) return false;
            }
            return true;
          },
          [&] {
            Row key;
            key.reserve(group_pos.size());
            for (int gp : group_pos) key.push_back(live(gp)->ValueAt(r));
            return key;
          });
      if (inserted) states.resize(states.size() + naggs);
      ids[r] = id;
    }
    for (size_t i = 0; i < naggs; ++i) {
      UpdateAggColumnar(proto.aggregates[i], global, live(io[i].arg_pos),
                        live(io[i].hidden_pos), ids, naggs, i, &states);
    }

    // Finalize straight into columns: key cells, then per aggregate the
    // output cell (plus a local Avg's hidden partial count) — the legacy
    // row layout, column-major.
    BatchPartition& sink = out.partitions[p];
    const size_t ngroups = table.size();
    sink.rows = ngroups;
    for (size_t j = 0; j < group_pos.size(); ++j) {
      ColumnVector col;
      col.Reserve(ngroups);
      for (size_t id = 0; id < ngroups; ++id) {
        col.AppendValue(table.KeyAt(id)[j]);
      }
      sink.columns.push_back(MakeColumn(std::move(col)));
    }
    for (size_t i = 0; i < naggs; ++i) {
      const AggregateDesc& a = proto.aggregates[i];
      ColumnVector col;
      col.Reserve(ngroups);
      for (size_t id = 0; id < ngroups; ++id) {
        col.AppendValue(
            FinalizeAggCell(a, states[id * naggs + i], global, local));
      }
      sink.columns.push_back(MakeColumn(std::move(col)));
      if (local && a.hidden_count != 0) {
        ColumnVector hid;
        hid.Reserve(ngroups);
        for (size_t id = 0; id < ngroups; ++id) {
          hid.AppendValue(Value::Int(states[id * naggs + i].count));
        }
        sink.columns.push_back(MakeColumn(std::move(hid)));
      }
    }
  });

  // Stream aggregates deliver rows ordered on their chosen sort order.
  if (node.kind == PhysicalOpKind::kStreamAgg && !node.sort_spec.Empty()) {
    std::vector<int> positions = out.schema.PositionsOf(node.sort_spec.cols);
    RunPartitions(out.partitions.size(), [&](size_t p) {
      out.partitions[p] = SortedPartition(out.partitions[p], positions);
    });
  }
  return out;
}

Result<BatchData> Executor::EvalJoinBatch(const PhysicalNode& node,
                                          BatchData left, BatchData right,
                                          ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  if (left.partitions.size() != right.partitions.size()) {
    return Status::ExecutionError(
        "join inputs have different partition counts (" +
        std::to_string(left.partitions.size()) + " vs " +
        std::to_string(right.partitions.size()) + ")");
  }
  std::vector<int> lpos, rpos;
  for (const auto& [l, r] : proto.join_keys) {
    lpos.push_back(left.schema.PositionOf(l));
    rpos.push_back(right.schema.PositionOf(r));
  }
  BatchData out;
  out.schema = proto.schema();
  out.partitions.resize(left.partitions.size());
  metrics->batches_evaluated +=
      LiveBatches(right, batch_size_) + LiveBatches(left, batch_size_);

  const size_t nleft = left.schema.columns().size();
  const size_t nright = right.schema.columns().size();
  // Residual predicate positions in the joined (left ++ right) schema.
  struct ResidualIo {
    int lhs_pos = -1;
    int rhs_pos = -1;  // -1: literal side
  };
  std::vector<ResidualIo> rio;
  for (const BoundPredicate& pred : proto.predicates) {
    ResidualIo r;
    r.lhs_pos = out.schema.PositionOf(pred.lhs);
    if (pred.rhs_is_column) r.rhs_pos = out.schema.PositionOf(pred.rhs);
    rio.push_back(r);
  }

  RunPartitions(left.partitions.size(), [&](size_t p) {
    // Dense live views of both sides (all columns: the output gathers
    // every cell of each surviving pair).
    std::vector<ColumnPtr> bcols(nright), pcols(nleft);
    for (size_t j = 0; j < nright; ++j) {
      bcols[j] = DenseColumn(right.partitions[p], static_cast<int>(j));
    }
    for (size_t j = 0; j < nleft; ++j) {
      pcols[j] = DenseColumn(left.partitions[p], static_cast<int>(j));
    }
    const size_t bn = right.partitions[p].LiveRows();
    const size_t pn = left.partitions[p].LiveRows();

    RowKeyTable table(bn);
    std::vector<std::vector<uint32_t>> rows_by_key;  // build row indices
    std::vector<uint64_t> hashes(bn, kRowKeySeed);
    for (int rp : rpos) HashColumnCells(*bcols[rp], bn, hashes.data());
    for (size_t r = 0; r < bn; ++r) {
      auto [id, inserted] = table.FindOrInsertHashed(
          hashes[r],
          [&](const Row& key) {
            for (size_t j = 0; j < rpos.size(); ++j) {
              if (!bcols[rpos[j]]->CellEquals(r, key[j])) return false;
            }
            return true;
          },
          [&] {
            Row key;
            key.reserve(rpos.size());
            for (int rp : rpos) key.push_back(bcols[rp]->ValueAt(r));
            return key;
          });
      if (inserted) rows_by_key.emplace_back();
      rows_by_key[id].push_back(static_cast<uint32_t>(r));
    }

    hashes.assign(pn, kRowKeySeed);
    for (int lp : lpos) HashColumnCells(*pcols[lp], pn, hashes.data());
    // Surviving (probe, build) pairs, in the legacy emit order: probe row
    // order outer, build insertion order within a key group.
    SelectionVector li, bi;
    auto cell = [&](int pos, uint32_t pi, uint32_t bri) {
      return pos < static_cast<int>(nleft)
                 ? pcols[static_cast<size_t>(pos)]->ValueAt(pi)
                 : bcols[static_cast<size_t>(pos) - nleft]->ValueAt(bri);
    };
    for (size_t i = 0; i < pn; ++i) {
      size_t id = table.FindHashed(hashes[i], [&](const Row& key) {
        for (size_t j = 0; j < lpos.size(); ++j) {
          if (!pcols[lpos[j]]->CellEquals(i, key[j])) return false;
        }
        return true;
      });
      if (id == RowKeyTable::kNotFound) continue;
      for (uint32_t b : rows_by_key[id]) {
        bool pass = true;
        for (size_t k = 0; k < rio.size(); ++k) {
          const BoundPredicate& pred = proto.predicates[k];
          Value lv = cell(rio[k].lhs_pos, static_cast<uint32_t>(i), b);
          Value rv = rio[k].rhs_pos >= 0
                         ? cell(rio[k].rhs_pos, static_cast<uint32_t>(i), b)
                         : pred.literal;
          if (!PredicatePassCells(pred.op, lv, rv)) {
            pass = false;
            break;
          }
        }
        if (pass) {
          li.push_back(static_cast<uint32_t>(i));
          bi.push_back(b);
        }
      }
    }

    BatchPartition& sink = out.partitions[p];
    sink.rows = li.size();
    sink.columns.reserve(nleft + nright);
    for (size_t j = 0; j < nleft; ++j) {
      sink.columns.push_back(MakeColumn(GatherColumn(*pcols[j], li)));
    }
    for (size_t j = 0; j < nright; ++j) {
      sink.columns.push_back(MakeColumn(GatherColumn(*bcols[j], bi)));
    }
  });
  return out;
}

BatchData Executor::ExchangeBatch(const PhysicalNode& node, BatchData in,
                                  ExecMetrics* metrics, bool preserve_order) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.exchange_cols.ToVector());
  metrics->bytes_shuffled += in.TotalLiveBytes();
  metrics->rows_shuffled += in.TotalLiveRows();
  metrics->batches_evaluated += LiveBatches(in, batch_size_);

  const size_t nsrc = in.partitions.size();
  const size_t width = in.schema.columns().size();
  // Phase 1: per source, hash the precomputed key columns and bin live
  // physical row indices per destination (live-row order).
  std::vector<std::vector<SelectionVector>> dsel(nsrc);
  RunPartitions(nsrc, [&](size_t s) {
    const BatchPartition& part = in.partitions[s];
    dsel[s].resize(machines);
    const size_t n = part.LiveRows();
    if (n == 0) return;
    std::vector<ColumnPtr> key_cols(width);
    std::vector<uint64_t> hashes(n, kRowKeySeed);
    for (int pos : positions) {
      ColumnPtr& col = key_cols[static_cast<size_t>(pos)];
      if (col == nullptr) col = DenseColumn(part, pos);
      HashColumnCells(*col, n, hashes.data());
    }
    for (size_t k = 0; k < n; ++k) {
      size_t d = hashes[k] % machines;
      dsel[s][d].push_back(part.filtered ? part.sel[k]
                                         : static_cast<uint32_t>(k));
    }
  });
  // Phase 2: per destination, concatenate the column slices source-major —
  // the exact row order of the legacy two-phase move scatter.
  BatchData out;
  out.schema = std::move(in.schema);
  out.partitions.resize(machines);
  RunPartitions(machines, [&](size_t d) {
    size_t total = 0;
    for (size_t s = 0; s < nsrc; ++s) total += dsel[s][d].size();
    BatchPartition& sink = out.partitions[d];
    sink.rows = total;
    sink.columns.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      ColumnVector acc;
      acc.Reserve(total);
      for (size_t s = 0; s < nsrc; ++s) {
        if (dsel[s][d].empty()) continue;
        acc.AppendColumn(*in.partitions[s].columns[j], &dsel[s][d]);
      }
      sink.columns.push_back(MakeColumn(std::move(acc)));
    }
  });
  if (preserve_order && !node.delivered.sort.Empty()) {
    std::vector<int> sort_pos =
        out.schema.PositionsOf(node.delivered.sort.cols);
    RunPartitions(out.partitions.size(), [&](size_t p) {
      out.partitions[p] = SortedPartition(out.partitions[p], sort_pos);
    });
  }
  return out;
}

}  // namespace scx
