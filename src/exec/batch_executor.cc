// The batch-native execution pipeline (cluster.batch_size > 1): operators
// consume and produce BatchData — immutable shared columns plus selection
// vectors — end to end. Rows exist only at Output (the sanctioned sink
// conversion); no operator bridges back to the row path any more
// (ExecMetrics::batch_pipeline_breaks is a tripwire held at 0). The legacy
// row pipeline in executor.cc stays verbatim at batch_size 1 as the
// differential anchor; every loop here is constructed to yield bit-identical
// raw outputs and legacy counters — see docs/architecture.md §14 for the
// argument.
//
// Intra-partition parallelism: the heavy scans (chain pipelines, key
// hashing, aggregate/join table builds, probe scans, exchange binning) are
// split into morsel_size_-row morsels scheduled as one flat job list over
// all partitions (Executor::RunMorsels), each job writing its own
// (partition, morsel) slot, followed by a fixed morsel-order merge. The
// merge order — never the thread schedule — decides every output and every
// counter, so results are bit-identical at any thread count and any morsel
// size; docs/architecture.md §15 gives the per-operator argument.

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/hash.h"
#include "exec/exec_detail.h"
#include "exec/executor.h"
#include "exec/row_key_table.h"
#include "exec/spool_cache.h"
#include "exec/vector_kernels.h"
#include "plan/expr_cse.h"

namespace scx {

namespace {

using exec_detail::AggState;
using exec_detail::FinalizeAggCell;
using exec_detail::SyntheticValue;

/// Total batch_size-chunks needed to process every partition's live rows —
/// the batch pipeline's batches_evaluated accounting (the pipeline operates
/// on whole partitions, so this is bookkeeping, not a physical chunking).
int64_t LiveBatches(const BatchData& d, size_t batch_size) {
  int64_t n = 0;
  for (const BatchPartition& p : d.partitions) {
    n += NumBatches(p.LiveRows(), batch_size);
  }
  return n;
}

ColumnPtr MakeColumn(ColumnVector&& col) {
  return std::make_shared<ColumnVector>(std::move(col));
}

/// The partition's column at `pos` with only live rows: shared as-is when
/// the partition is unfiltered, gathered through the selection otherwise.
ColumnPtr DenseColumn(const BatchPartition& part, int pos) {
  const ColumnPtr& col = part.columns[static_cast<size_t>(pos)];
  if (!part.filtered) return col;
  return MakeColumn(GatherColumn(*col, part.sel));
}

/// All partitions' live rows concatenated (partition order, live-row order)
/// into one dense partition — the columnar TakeGathered.
BatchPartition ConcatLive(const BatchData& in) {
  BatchPartition out;
  const size_t width = in.schema.columns().size();
  size_t total = 0;
  for (const BatchPartition& p : in.partitions) total += p.LiveRows();
  out.rows = total;
  out.columns.reserve(width);
  for (size_t j = 0; j < width; ++j) {
    ColumnVector acc;
    acc.Reserve(total);
    for (const BatchPartition& p : in.partitions) {
      acc.AppendColumn(*p.columns[j], p.Selection());
    }
    out.columns.push_back(MakeColumn(std::move(acc)));
  }
  return out;
}

/// The partition's live rows sorted on `positions` (all ascending), as a
/// dense partition. Sorts a permutation of live physical indices with the
/// exact cell comparator of the row path's SortRows: std::sort's control
/// flow depends only on the comparator outcomes and the element count,
/// both identical to sorting the materialized rows, so the resulting row
/// order is bit-identical to the legacy path's.
BatchPartition SortedPartition(const BatchPartition& part,
                               const std::vector<int>& positions) {
  SelectionVector perm;
  if (part.filtered) {
    perm = part.sel;
  } else {
    perm.resize(part.rows);
    for (uint32_t i = 0; i < static_cast<uint32_t>(part.rows); ++i) {
      perm[i] = i;
    }
  }
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (int p : positions) {
      const ColumnVector& col = *part.columns[static_cast<size_t>(p)];
      int c = CompareCells(col, a, col, b);
      if (c != 0) return c < 0;
    }
    return false;
  });
  BatchPartition out;
  out.rows = perm.size();
  out.columns.reserve(part.columns.size());
  for (const ColumnPtr& col : part.columns) {
    out.columns.push_back(MakeColumn(GatherColumn(*col, perm)));
  }
  return out;
}

/// Cell as double with ScalarExpr/Value::AsNumeric semantics (typed fast
/// paths; the kValue fallback aborts on strings exactly like the row path).
inline double NumericCell(const ColumnVector& col, size_t r) {
  switch (col.rep()) {
    case ColumnRep::kInt64:
      return static_cast<double>(col.ints()[r]);
    case ColumnRep::kDouble:
      return col.doubles()[r];
    default:
      return col.ValueAt(r).AsNumeric();
  }
}

/// Column-major aggregate update: folds one whole argument column into the
/// per-group states of aggregate `agg_index`. `ids[r]` is row r's dense
/// group id. Per (group, aggregate) pair the update order is the column's
/// row order — exactly the row-at-a-time loop's order, so every partial
/// (including float sums) is bit-identical to the legacy path.
void UpdateAggColumnar(const AggregateDesc& a, bool global,
                       const ColumnVector* arg, const ColumnVector* hidden,
                       const std::vector<size_t>& ids, size_t naggs,
                       size_t agg_index, std::vector<AggState>* states) {
  const size_t n = ids.size();
  auto state = [&](size_t r) -> AggState& {
    return (*states)[ids[r] * naggs + agg_index];
  };
  switch (a.fn) {
    case AggFn::kSum:
      // Same in the merge (global) and raw-row cases: partial sums were
      // rewritten to kSum by the split rule.
      switch (arg->rep()) {
        case ColumnRep::kInt64: {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
          break;
        }
        case ColumnRep::kDouble: {
          const double* v = arg->doubles().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.dsum += v[r];
            s.seen = true;
          }
          break;
        }
        default:
          for (size_t r = 0; r < n; ++r) {
            Value v = arg->ValueAt(r);
            AggState& s = state(r);
            if (v.is_int()) {
              s.isum += v.as_int();
            } else {
              s.dsum += v.AsNumeric();
            }
            s.seen = true;
          }
          break;
      }
      break;
    case AggFn::kCount:
      if (global) {
        // Merging partial counts: sum the int column.
        if (arg->rep() == ColumnRep::kInt64) {
          const int64_t* v = arg->ints().data();
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += v[r];
            s.seen = true;
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            AggState& s = state(r);
            s.isum += arg->ValueAt(r).as_int();
            s.seen = true;
          }
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          AggState& s = state(r);
          ++s.count;
          s.seen = true;
        }
      }
      break;
    case AggFn::kMin:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v < s.minv) s.minv = v;
        s.seen = true;
      }
      break;
    case AggFn::kMax:
      for (size_t r = 0; r < n; ++r) {
        Value v = arg->ValueAt(r);
        AggState& s = state(r);
        if (!s.seen || v > s.maxv) s.maxv = v;
        s.seen = true;
      }
      break;
    case AggFn::kAvg:
      for (size_t r = 0; r < n; ++r) {
        AggState& s = state(r);
        s.dsum += NumericCell(*arg, r);
        if (global) {
          s.count += hidden->rep() == ColumnRep::kInt64
                         ? hidden->ints()[r]
                         : hidden->ValueAt(r).as_int();
        } else {
          ++s.count;
        }
        s.seen = true;
      }
      break;
  }
}

/// True when any stage actually computes a column. Decides — uniformly for
/// every morsel of a schedule — whether sub-morsel reshaped results come
/// back dense (they compacted at the first evaluating stage) or as shared
/// input columns plus a selection.
bool ScheduleEvals(const PipelineSchedule& sched) {
  for (const PipelineStage& st : sched.stages) {
    if (st.has_eval) return true;
  }
  return false;
}

/// True when any stage can narrow the selection.
bool ScheduleFilters(const PipelineSchedule& sched) {
  for (const PipelineStage& st : sched.stages) {
    if (st.is_filter) return true;
  }
  return false;
}

/// Runs live rows [mbegin, mend) of one partition through a fused chain
/// schedule. Filter stages narrow the selection over the current physical
/// row space without touching a column; a compute stage that actually
/// evaluates (has_eval) first compacts the live rows — gathering every
/// still-needed column through the selection, or slicing the morsel's dense
/// range — so expressions run densely over exactly the rows the
/// row-at-a-time path evaluates them on (never on filtered-out rows, which
/// could abort on type errors the legacy path never sees).
///
/// `stage_live[si]` accumulates the live rows entering stage si; the caller
/// sums them across a partition's morsels before converting to batch counts,
/// which keeps batches_evaluated identical at every morsel size. A morsel
/// covering the whole partition returns the exact serial shape; a proper
/// sub-range is normalized for the fixed morsel-order merge — dense columns
/// when the schedule evaluates, a selection over the parent's physical space
/// otherwise. Only the representation can differ from serial; the live-cell
/// sequence never does.
BatchPartition RunChainMorsel(const PipelineSchedule& sched,
                              const std::vector<int>& col_pos,
                              const BatchPartition& in, size_t mbegin,
                              size_t mend, std::vector<int64_t>* stage_live) {
  const size_t live_total = in.LiveRows();
  const bool whole = mbegin == 0 && mend == live_total;
  const size_t nsteps = sched.steps.size();
  std::vector<ColumnPtr> cols(nsteps);
  for (size_t s = 0; s < nsteps; ++s) {
    if (col_pos[s] >= 0) {
      cols[s] = in.columns[static_cast<size_t>(col_pos[s])];
    }
  }
  // The morsel's live range over the current row space: a slice of the
  // parent selection when filtered, the dense range [base, limit) otherwise.
  // Compaction (gather or slice) rebases to a morsel-dense space where
  // base == 0 and limit is the live count.
  size_t base = 0;
  size_t limit = in.rows;
  SelectionVector sel;
  bool filtered = in.filtered;
  if (filtered) {
    sel.assign(in.sel.begin() + static_cast<ptrdiff_t>(mbegin),
               in.sel.begin() + static_cast<ptrdiff_t>(mend));
  } else {
    base = mbegin;
    limit = mend;
  }
  for (size_t si = 0; si < sched.stages.size(); ++si) {
    const PipelineStage& stage = sched.stages[si];
    (*stage_live)[si] +=
        static_cast<int64_t>(filtered ? sel.size() : limit - base);
    if (stage.is_filter) {
      for (const PredStep& ps : stage.preds) {
        SelectByPredicate(*cols[static_cast<size_t>(ps.lhs)],
                          ps.rhs >= 0 ? cols[static_cast<size_t>(ps.rhs)].get()
                                      : nullptr,
                          ps.literal, ps.op, limit, /*first=*/!filtered, &sel,
                          base);
        filtered = true;
        // Later predicates of this stage select from an empty set; the row
        // path never evaluates them on any row either.
        if (sel.empty()) break;
      }
      continue;
    }
    if (stage.has_eval) {
      if (filtered) {
        for (size_t s = 0; s < nsteps; ++s) {
          if (cols[s] == nullptr) continue;
          if (sched.last_use[s] < static_cast<int>(si)) {
            cols[s].reset();  // dead beyond this point; stop copying it
            continue;
          }
          cols[s] = MakeColumn(GatherColumn(*cols[s], sel));
        }
        base = 0;
        limit = sel.size();
        sel.clear();
        filtered = false;
      } else if (base > 0 || limit < in.rows) {
        // Unfiltered sub-range: slice the still-needed columns so the
        // expressions below run only over this morsel's rows.
        for (size_t s = 0; s < nsteps; ++s) {
          if (cols[s] == nullptr) continue;
          if (sched.last_use[s] < static_cast<int>(si)) {
            cols[s].reset();
            continue;
          }
          cols[s] = MakeColumn(SliceColumn(*cols[s], base, limit));
        }
        limit -= base;
        base = 0;
      }
    }
    for (int e : stage.eval_steps) {
      const ExprStep& step = sched.steps[static_cast<size_t>(e)];
      switch (step.kind) {
        case ScalarExpr::Kind::kColumn:
          break;  // bound from the chain input above
        case ScalarExpr::Kind::kLiteral:
          cols[static_cast<size_t>(e)] =
              MakeColumn(SplatColumn(step.literal, limit));
          break;
        case ScalarExpr::Kind::kBinary: {
          auto col = std::make_shared<ColumnVector>();
          EvalBinaryColumns(step.op, *cols[static_cast<size_t>(step.lhs)],
                            *cols[static_cast<size_t>(step.rhs)], limit,
                            col.get());
          cols[static_cast<size_t>(e)] = std::move(col);
          break;
        }
      }
    }
  }
  BatchPartition out;
  if (whole) {
    // Exactly the serial result: share columns, just narrow the selection.
    out.rows = limit;
    out.sel = std::move(sel);
    out.filtered = filtered;
    if (sched.reshaped) {
      out.columns.reserve(sched.output_steps.size());
      for (int s : sched.output_steps) {
        out.columns.push_back(cols[static_cast<size_t>(s)]);
      }
    } else {
      out.columns = in.columns;  // filters only: share, just narrow the sel
    }
    return out;
  }
  if (sched.reshaped && ScheduleEvals(sched)) {
    // The first evaluating stage compacted, so the output columns are
    // morsel-dense; compact any trailing selection too and the merge is a
    // plain column concatenation.
    out.columns.reserve(sched.output_steps.size());
    if (filtered) {
      for (int s : sched.output_steps) {
        out.columns.push_back(
            MakeColumn(GatherColumn(*cols[static_cast<size_t>(s)], sel)));
      }
      out.rows = sel.size();
    } else {
      for (int s : sched.output_steps) {
        out.columns.push_back(cols[static_cast<size_t>(s)]);
      }
      out.rows = limit;
    }
    return out;
  }
  // No evaluation ever ran: the output shares whole-partition input columns
  // and the morsel's result is a selection over the parent's physical space
  // (synthesized as the identity of the range when no predicate narrowed
  // it), so the merge concatenates selections.
  if (!filtered) {
    sel.reserve(limit - base);
    for (size_t i = base; i < limit; ++i) {
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  out.rows = in.rows;
  out.sel = std::move(sel);
  out.filtered = true;
  if (sched.reshaped) {
    out.columns.reserve(sched.output_steps.size());
    for (int s : sched.output_steps) {
      out.columns.push_back(cols[static_cast<size_t>(s)]);
    }
  } else {
    out.columns = in.columns;
  }
  return out;
}

bool IsChainOp(PhysicalOpKind kind) {
  return kind == PhysicalOpKind::kFilter || kind == PhysicalOpKind::kCompute ||
         kind == PhysicalOpKind::kProject;
}

}  // namespace

Result<BatchData> Executor::EvalBatch(const PhysicalNodePtr& node,
                                      ExecMetrics* metrics) {
  if (!fault_enabled_ || in_recovery_) return EvalBatchInner(node, metrics);
  // Pass ids are pre-order, captured before the children consume ids —
  // mirrors Eval (executor.cc). Fused chain interiors share their head's
  // pass: the chain is one failure domain, like one SCOPE stage.
  int64_t pass = metrics->operator_invocations + 1;
  SCX_ASSIGN_OR_RETURN(BatchData out, EvalBatchInner(node, metrics));
  SCX_RETURN_IF_ERROR(InjectFaultsBatch(node, pass, &out, metrics));
  return out;
}

Status Executor::InjectFaultsBatch(const PhysicalNodePtr& node, int64_t pass,
                                   BatchData* out, ExecMetrics* metrics) {
  const FaultPlan& plan = cluster_.fault_plan;
  int64_t slowest = 0;
  for (size_t m = 0; m < out->partitions.size(); ++m) {
    double ticks = static_cast<double>(out->partitions[m].LiveRows()) *
                   plan.StragglerMultiplier(static_cast<int>(m));
    slowest = std::max(slowest, static_cast<int64_t>(ticks));
  }
  metrics->sim_makespan_ticks += slowest;
  if (node->kind == PhysicalOpKind::kOutput ||
      node->kind == PhysicalOpKind::kSequence) {
    return Status();
  }
  for (size_t m = 0; m < out->partitions.size(); ++m) {
    if (!plan.FailsAt(pass, static_cast<int>(m))) continue;
    if (plan.max_failures > 0 &&
        metrics->machine_failures_injected >= plan.max_failures) {
      break;
    }
    ++metrics->machine_failures_injected;
    out->partitions[m] = BatchPartition();  // the machine's output is gone
    SCX_RETURN_IF_ERROR(RecoverPartitionBatch(node, m, out, metrics));
  }
  return Status();
}

Status Executor::RecoverPartitionBatch(const PhysicalNodePtr& node, size_t m,
                                       BatchData* out, ExecMetrics* metrics) {
  const FaultPlan& plan = cluster_.fault_plan;
  ++metrics->partitions_recovered;
  if (node->kind == PhysicalOpKind::kSpool &&
      !plan.disable_recovery_spool_reads) {
    // Re-read the surviving spool (durable storage): sharing the entry's
    // immutable columns restores the partition without copying a cell. The
    // cross-query peek pins its entry so a concurrent insertion cannot
    // evict it mid-read, and bumps no reuse count (fault-vs-clean identity).
    auto it = batch_spool_cache_.find(node.get());
    if (it != batch_spool_cache_.end() && m < it->second.partitions.size()) {
      out->partitions[m] = it->second.partitions[m];
      ++metrics->recovery_spool_hits;
      return Status();
    }
    if (cross_cache_ != nullptr) {
      CrossQuerySpoolCache::PinnedEntry pin =
          cross_cache_->Pin(CrossKeyFor(*node, /*batch=*/true));
      if (pin && m < pin.batch().partitions.size()) {
        out->partitions[m] = pin.batch().partitions[m];
        ++metrics->recovery_spool_hits;
        return Status();
      }
    }
  }
  // Deterministic side-effect-free recomputation — see RecoverPartition
  // (executor.cc) for the contract.
  ExecMetrics scratch;
  in_recovery_ = true;
  auto recomputed = EvalBatchInner(node, &scratch);
  in_recovery_ = false;
  recovery_overlay_.clear();
  recovery_batch_overlay_.clear();
  if (!recomputed.ok()) return recomputed.status();
  metrics->rows_recomputed += recomputed->TotalLiveRows();
  metrics->recovery_spool_hits += scratch.spool_cache_hits;
  metrics->recovery_bytes_moved += scratch.bytes_extracted +
                                   scratch.bytes_shuffled +
                                   scratch.bytes_spooled;
  if (m < recomputed->partitions.size()) {
    out->partitions[m] = std::move(recomputed->partitions[m]);
  }
  return Status();
}

Result<BatchData> Executor::RecoverySpoolBatch(const PhysicalNodePtr& node,
                                               ExecMetrics* scratch) {
  const bool allow_reads = !cluster_.fault_plan.disable_recovery_spool_reads;
  if (allow_reads) {
    auto it = batch_spool_cache_.find(node.get());
    if (it != batch_spool_cache_.end()) {
      ++scratch->spool_reads;
      ++scratch->spool_cache_hits;  // folded into recovery_spool_hits
      return it->second;
    }
  }
  auto ov = recovery_batch_overlay_.find(node.get());
  if (ov != recovery_batch_overlay_.end()) {
    ++scratch->spool_reads;
    return ov->second;
  }
  if (allow_reads && cross_cache_ != nullptr) {
    CrossQuerySpoolCache::PinnedEntry pin =
        cross_cache_->Pin(CrossKeyFor(*node, /*batch=*/true));
    if (pin) {
      ++scratch->spool_reads;
      ++scratch->spool_cache_hits;
      BatchData data = pin.batch();  // shares immutable columns
      recovery_batch_overlay_[node.get()] = data;
      return data;
    }
  }
  SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], scratch));
  recovery_batch_overlay_[node.get()] = in;
  return in;
}

Result<BatchData> Executor::EvalBatchInner(const PhysicalNodePtr& node,
                                           ExecMetrics* metrics) {
  ++metrics->operator_invocations;
  switch (node->kind) {
    case PhysicalOpKind::kExtract:
      return EvalExtractBatch(*node, metrics);

    case PhysicalOpKind::kFilter:
    case PhysicalOpKind::kProject:
    case PhysicalOpKind::kCompute:
      return EvalChainBatch(node, metrics);

    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return EvalAggregateBatch(*node, std::move(in), metrics);
    }

    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      SCX_ASSIGN_OR_RETURN(BatchData l, EvalBatch(node->children[0], metrics));
      SCX_ASSIGN_OR_RETURN(BatchData r, EvalBatch(node->children[1], metrics));
      return EvalJoinBatch(*node, std::move(l), std::move(r), metrics);
    }

    case PhysicalOpKind::kUnionAll: {
      BatchData out;
      out.schema = node->proto->schema();
      const size_t machines = static_cast<size_t>(cluster_.machines);
      const size_t width = out.schema.columns().size();
      std::vector<std::vector<ColumnVector>> acc(machines);
      for (auto& a : acc) a.resize(width);
      std::vector<size_t> rows_acc(machines, 0);
      for (const PhysicalNodePtr& child : node->children) {
        SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(child, metrics));
        for (size_t p = 0; p < in.partitions.size(); ++p) {
          const BatchPartition& part = in.partitions[p];
          size_t dest = p % machines;
          rows_acc[dest] += part.LiveRows();
          for (size_t j = 0; j < width; ++j) {
            acc[dest][j].AppendColumn(*part.columns[j], part.Selection());
          }
        }
      }
      out.partitions.resize(machines);
      for (size_t d = 0; d < machines; ++d) {
        BatchPartition& part = out.partitions[d];
        part.rows = rows_acc[d];
        part.columns.reserve(width);
        for (size_t j = 0; j < width; ++j) {
          part.columns.push_back(MakeColumn(std::move(acc[d][j])));
        }
      }
      return out;
    }

    case PhysicalOpKind::kSpool: {
      // Recovery recomputation must not mutate spool bookkeeping (caches,
      // reuse counts, budget): reroute to the read-only recovery path.
      if (in_recovery_) return RecoverySpoolBatch(node, metrics);
      auto it = batch_spool_cache_.find(node.get());
      if (it != batch_spool_cache_.end()) {
        ++metrics->spool_reads;
        ++metrics->spool_cache_hits;
        TrackSpoolRead(node.get());
        // A hit copies shared_ptrs: every reader shares the materialized
        // immutable columns; no row (or cell) is ever copied.
        return it->second;
      }
      if (cross_cache_ != nullptr) {
        SpoolCacheKey key = CrossKeyFor(*node, /*batch=*/true);
        if (auto hit = cross_cache_->LookupBatch(key)) {
          // Served by an earlier execution (shared immutable columns): no
          // materialization work, no bytes_spooled.
          ++metrics->spool_reads;
          ++metrics->spool_cache_hits;
          ++metrics->cross_query_spool_hits;
          BatchData data = std::move(*hit);
          batch_spool_cache_[node.get()] = data;
          TrackSpoolInsert(node.get(), data.TotalLiveBytes(), metrics);
          return data;
        }
      }
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      // Materialize compacted so every consumer reads dense columns.
      RunPartitions(in.partitions.size(), [&](size_t p) {
        in.partitions[p] = CompactPartition(in.partitions[p]);
      });
      metrics->bytes_spooled += in.TotalLiveBytes();
      metrics->rows_spooled += in.TotalLiveRows();
      ++metrics->spool_executions;
      ++metrics->spool_reads;
      if (cross_cache_ != nullptr) {
        cross_cache_->InsertBatch(CrossKeyFor(*node, /*batch=*/true), in,
                                  DagCost(node->children[0]),
                                  &metrics->spool_bytes_evicted);
      }
      batch_spool_cache_[node.get()] = in;
      TrackSpoolInsert(node.get(), in.TotalLiveBytes(), metrics);
      return in;
    }

    case PhysicalOpKind::kSpoolScan:
      // Rejected by ValidatePlan before execution; kept only so the
      // operator switch stays exhaustive.
      break;

    case PhysicalOpKind::kOutput: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      // The one sanctioned columns->rows conversion: the output sink is a
      // row container. Not counted as rows_converted, which tracks only
      // unsanctioned mid-pipeline bridges (and therefore stays 0).
      size_t machines = in.partitions.size();
      std::vector<Row> rows;
      rows.reserve(static_cast<size_t>(in.TotalLiveRows()));
      for (const BatchPartition& part : in.partitions) {
        AppendPartitionRows(part, &rows);
      }
      metrics->rows_output += static_cast<int64_t>(rows.size());
      auto& sink = metrics->outputs[node->proto->output_path];
      sink.insert(sink.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(machines);
      return out;
    }

    case PhysicalOpKind::kSequence: {
      for (const PhysicalNodePtr& c : node->children) {
        SCX_ASSIGN_OR_RETURN(BatchData ignored, EvalBatch(c, metrics));
        (void)ignored;
      }
      BatchData out;
      out.partitions.resize(static_cast<size_t>(cluster_.machines));
      return out;
    }

    case PhysicalOpKind::kHashExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return ExchangeBatch(*node, std::move(in), metrics,
                           /*preserve_order=*/false);
    }
    case PhysicalOpKind::kMergeExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return ExchangeBatch(*node, std::move(in), metrics,
                           /*preserve_order=*/true);
    }

    case PhysicalOpKind::kRangeExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      return RangeExchangeBatch(*node, std::move(in), metrics);
    }

    case PhysicalOpKind::kBroadcastExchange: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      size_t machines = static_cast<size_t>(cluster_.machines);
      metrics->bytes_shuffled +=
          in.TotalLiveBytes() * static_cast<int64_t>(machines);
      metrics->rows_shuffled +=
          in.TotalLiveRows() * static_cast<int64_t>(machines);
      // One dense gathered copy; every machine shares its columns. The row
      // path copies the gathered rows machine-1 times — here the fan-out
      // is machines shared_ptr copies.
      BatchPartition all = ConcatLive(in);
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.assign(machines, all);
      return out;
    }

    case PhysicalOpKind::kGather: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      metrics->bytes_shuffled += in.TotalLiveBytes();
      metrics->rows_shuffled += in.TotalLiveRows();
      BatchData out;
      out.schema = std::move(in.schema);
      out.partitions.resize(1);
      in.schema = out.schema;  // ConcatLive reads the schema width
      out.partitions[0] = ConcatLive(in);
      if (!node->delivered.sort.Empty()) {
        out.partitions[0] = SortedPartition(
            out.partitions[0],
            out.schema.PositionsOf(node->delivered.sort.cols));
      }
      return out;
    }

    case PhysicalOpKind::kSort: {
      SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(node->children[0], metrics));
      std::vector<int> positions =
          in.schema.PositionsOf(node->sort_spec.cols);
      RunPartitions(in.partitions.size(), [&](size_t p) {
        in.partitions[p] = SortedPartition(in.partitions[p], positions);
      });
      return in;
    }
  }
  return Status::Internal("unhandled physical operator " +
                          std::string(PhysicalOpKindName(node->kind)));
}

Result<BatchData> Executor::EvalExtractBatch(const PhysicalNode& node,
                                             ExecMetrics* metrics) {
  const FileDef& file = node.proto->file;
  BatchData out;
  out.schema = node.proto->schema();
  size_t machines = static_cast<size_t>(cluster_.machines);
  out.partitions.resize(machines);

  std::vector<int> file_cols;
  for (const ColumnInfo& c : out.schema.columns()) {
    int idx = file.ColumnIndex(c.name);
    if (idx < 0) {
      return Status::ExecutionError("extract column " + c.name +
                                    " missing from file " + file.path);
    }
    file_cols.push_back(idx);
  }
  // Row i lands on machine i % machines; machine m synthesizes rows
  // m, m + machines, ... straight into columns — cell-for-cell the rows
  // the legacy extract builds, without ever materializing one.
  int64_t rows = file.row_count;
  RunPartitions(machines, [&](size_t m) {
    BatchPartition& part = out.partitions[m];
    const size_t width = file_cols.size();
    std::vector<ColumnVector> cols(width);
    int64_t count =
        rows > static_cast<int64_t>(m)
            ? (rows - static_cast<int64_t>(m) +
               static_cast<int64_t>(machines) - 1) /
                  static_cast<int64_t>(machines)
            : 0;
    for (size_t j = 0; j < width; ++j) {
      cols[j].Reserve(static_cast<size_t>(count));
      for (int64_t i = static_cast<int64_t>(m); i < rows;
           i += static_cast<int64_t>(machines)) {
        cols[j].AppendValue(SyntheticValue(file, file_cols[j], i));
      }
    }
    part.rows = static_cast<size_t>(count);
    part.columns.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      part.columns.push_back(MakeColumn(std::move(cols[j])));
    }
  });
  metrics->rows_extracted += rows;
  metrics->bytes_extracted += out.TotalLiveBytes();
  return out;
}

Result<BatchData> Executor::EvalChainBatch(const PhysicalNodePtr& head,
                                           ExecMetrics* metrics) {
  // Collect the maximal Filter/Compute/Project chain below (and including)
  // the head, top-down.
  std::vector<const PhysicalNode*> chain;
  PhysicalNodePtr cur = head;
  while (IsChainOp(cur->kind)) {
    chain.push_back(cur.get());
    cur = cur->children[0];
  }
  // EvalBatch already counted the head; the interior nodes are operator
  // invocations of their own, exactly as the per-node row path counts them.
  metrics->operator_invocations += static_cast<int64_t>(chain.size()) - 1;
  SCX_ASSIGN_OR_RETURN(BatchData in, EvalBatch(cur, metrics));

  // Lower the chain bottom-up (execution order) into one fused schedule.
  std::vector<PipelineStageDesc> descs;
  descs.reserve(chain.size());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    PipelineStageDesc desc;
    switch ((*it)->kind) {
      case PhysicalOpKind::kFilter:
        desc.predicates = &(*it)->proto->predicates;
        break;
      case PhysicalOpKind::kCompute:
        desc.items = &(*it)->proto->compute_items;
        break;
      default:
        desc.project = &(*it)->proto->project_map;
        break;
    }
    descs.push_back(desc);
  }
  PipelineSchedule sched = BuildPipelineSchedule(descs);
  metrics->exprs_deduped += sched.duplicates_eliminated;

  std::vector<int> col_pos(sched.steps.size(), -1);
  for (size_t s = 0; s < sched.steps.size(); ++s) {
    if (sched.steps[s].kind == ScalarExpr::Kind::kColumn) {
      col_pos[s] = in.schema.PositionOf(sched.steps[s].column);
    }
  }

  BatchData out;
  out.schema = chain.front()->proto->schema();
  const size_t nparts = in.partitions.size();
  const size_t nstages = sched.stages.size();
  out.partitions.resize(nparts);

  // Pure remap (no filter, no eval — every plain SELECT column list): there
  // is no per-row work to split, and the whole-partition path shares the
  // input columns zero-copy where a sub-morsel run would have to emit a
  // synthesized selection — turning every downstream dense-column share
  // into a full gather. Run it serial-shaped per partition instead.
  if (!ScheduleFilters(sched) && !ScheduleEvals(sched)) {
    RunPartitions(nparts, [&](size_t p) {
      std::vector<int64_t> plive(nstages, 0);
      out.partitions[p] =
          RunChainMorsel(sched, col_pos, in.partitions[p],
                         /*mbegin=*/0, in.partitions[p].LiveRows(), &plive);
    });
    for (size_t p = 0; p < nparts; ++p) {
      metrics->batches_evaluated +=
          static_cast<int64_t>(nstages) *
          NumBatches(in.partitions[p].LiveRows(), batch_size_);
    }
    return out;
  }

  // Morsel pass: every (partition, morsel) range runs the whole schedule
  // into its own output slot and per-stage live-row counts.
  std::vector<size_t> live(nparts);
  std::vector<std::vector<BatchPartition>> mout(nparts);
  std::vector<std::vector<std::vector<int64_t>>> mlive(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    live[p] = in.partitions[p].LiveRows();
    const size_t nm = static_cast<size_t>(NumBatches(live[p], morsel_size_));
    mout[p].resize(nm);
    mlive[p].assign(nm, std::vector<int64_t>(nstages, 0));
  }
  RunMorsels(live, metrics, [&](size_t p, size_t b, size_t e) {
    mout[p][b / morsel_size_] = RunChainMorsel(
        sched, col_pos, in.partitions[p], b, e, &mlive[p][b / morsel_size_]);
  });

  // Merge pass: fixed morsel-order concatenation per partition, so the
  // live-cell sequence is the serial chain's at any morsel size or thread
  // count.
  RunPartitions(nparts, [&](size_t p) {
    std::vector<BatchPartition>& ms = mout[p];
    BatchPartition& sink = out.partitions[p];
    if (ms.empty()) {
      // Zero live rows, zero morsels: still run the (empty) chain so the
      // output columns exist for downstream consumers, as in serial.
      std::vector<int64_t> zero(nstages, 0);
      sink = RunChainMorsel(sched, col_pos, in.partitions[p], 0, 0, &zero);
      return;
    }
    if (ms.size() == 1) {
      sink = std::move(ms[0]);
      return;
    }
    if (sched.reshaped && ScheduleEvals(sched)) {
      // Dense morsel outputs: concatenate columns in morsel order.
      size_t total = 0;
      for (const BatchPartition& m : ms) total += m.rows;
      const size_t width = sched.output_steps.size();
      sink.rows = total;
      sink.columns.reserve(width);
      for (size_t j = 0; j < width; ++j) {
        ColumnVector acc;
        acc.Reserve(total);
        for (const BatchPartition& m : ms) {
          acc.AppendColumn(*m.columns[j], nullptr);
        }
        sink.columns.push_back(MakeColumn(std::move(acc)));
      }
      return;
    }
    // Shared columns: concatenate the morsel selections — disjoint,
    // ascending slices of the parent's live order.
    size_t total = 0;
    for (const BatchPartition& m : ms) total += m.sel.size();
    sink.rows = in.partitions[p].rows;
    sink.filtered = true;
    sink.sel.reserve(total);
    for (const BatchPartition& m : ms) {
      sink.sel.insert(sink.sel.end(), m.sel.begin(), m.sel.end());
    }
    sink.columns = sched.reshaped ? ms[0].columns : in.partitions[p].columns;
  });

  // batches_evaluated depends on per-stage selectivity: per-morsel live
  // counts sum to the partition's per-stage live rows, so the batch count
  // is the serial one at every morsel size. Summed master-side in
  // partition order.
  for (size_t p = 0; p < nparts; ++p) {
    for (size_t s = 0; s < nstages; ++s) {
      int64_t rows_at_stage = 0;
      for (const std::vector<int64_t>& m : mlive[p]) rows_at_stage += m[s];
      metrics->batches_evaluated +=
          NumBatches(static_cast<size_t>(rows_at_stage), batch_size_);
    }
  }
  return out;
}

Result<BatchData> Executor::EvalAggregateBatch(const PhysicalNode& node,
                                               BatchData in,
                                               ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  const bool local = proto.kind() == LogicalOpKind::kLocalGbAgg;
  const bool global = proto.kind() == LogicalOpKind::kGlobalGbAgg;

  std::vector<int> group_pos = in.schema.PositionsOf(proto.group_cols);
  struct AggIo {
    int arg_pos = -1;
    int hidden_pos = -1;  // global-Avg partial-count input
  };
  const size_t naggs = proto.aggregates.size();
  std::vector<AggIo> io(naggs);
  for (size_t i = 0; i < naggs; ++i) {
    const AggregateDesc& a = proto.aggregates[i];
    if (!a.count_star) io[i].arg_pos = in.schema.PositionOf(a.arg);
    if (global && a.fn == AggFn::kAvg && a.hidden_count != 0) {
      io[i].hidden_pos = in.schema.PositionOf(a.hidden_count);
    }
  }

  BatchData out;
  out.schema = proto.schema();
  out.partitions.resize(in.partitions.size());
  metrics->batches_evaluated += LiveBatches(in, batch_size_);

  const size_t in_width = in.schema.columns().size();
  const size_t nparts = in.partitions.size();

  // Per-partition state threaded through the passes below.
  struct PartAgg {
    std::vector<ColumnPtr> dense;  ///< live views of referenced columns
    size_t n = 0;
    std::vector<uint64_t> hashes;
    std::vector<size_t> ids;  ///< global group id per live row, row order
    RowKeyTable table{0};
    std::vector<AggState> states;  ///< naggs states per group, group-major
  };
  std::vector<PartAgg> ps(nparts);
  std::vector<size_t> live(nparts);

  // Pass 1 (partition-parallel): densify the referenced columns — shared
  // when the partition is unfiltered, gathered through the selection
  // otherwise — and allocate the shared hash accumulator morsel jobs write
  // disjoint slices of.
  RunPartitions(nparts, [&](size_t p) {
    PartAgg& st = ps[p];
    const BatchPartition& part = in.partitions[p];
    st.n = part.LiveRows();
    st.dense.resize(in_width);
    auto densify = [&](int pos) {
      if (pos < 0) return;
      ColumnPtr& col = st.dense[static_cast<size_t>(pos)];
      if (col == nullptr) col = DenseColumn(part, pos);
    };
    for (int gp : group_pos) densify(gp);
    for (size_t i = 0; i < naggs; ++i) {
      densify(io[i].arg_pos);
      densify(io[i].hidden_pos);
    }
    st.hashes.assign(st.n, kRowKeySeed);
    st.ids.resize(st.n);
  });
  for (size_t p = 0; p < nparts; ++p) live[p] = ps[p].n;

  // Pass 2 (morsel-parallel): hash the key cells. Hashing is the
  // data-parallel, SIMD-friendly half of group-id assignment; each morsel
  // writes a disjoint slice of the partition's hash array.
  RunMorsels(live, metrics, [&](size_t p, size_t b, size_t e) {
    PartAgg& st = ps[p];
    for (int gp : group_pos) {
      HashColumnCells(*st.dense[static_cast<size_t>(gp)], b, e,
                      st.hashes.data());
    }
  });

  // Pass 3 (partition-parallel): one serial-row-order insert scan per
  // partition over the precomputed hashes. Scanning in row order makes the
  // table's insertion order — and therefore every dense group id and the
  // output group order — the serial one by construction, at any morsel
  // size, with no merge step to pay for. (A morsel-local-table fold gives
  // the same ids but costs a rebuild pass; measured, it was ~20% of
  // aggregate-heavy scripts.)
  RunPartitions(nparts, [&](size_t p) {
    PartAgg& st = ps[p];
    st.table = RowKeyTable(st.n);
    for (size_t r = 0; r < st.n; ++r) {
      auto [id, inserted] = st.table.FindOrInsertHashed(
          st.hashes[r],
          [&](const Row& key) {
            for (size_t j = 0; j < group_pos.size(); ++j) {
              const ColumnVector& col =
                  *st.dense[static_cast<size_t>(group_pos[j])];
              if (!col.CellEquals(r, key[j])) return false;
            }
            return true;
          },
          [&] {
            Row key;
            key.reserve(group_pos.size());
            for (int gp : group_pos) {
              key.push_back(st.dense[static_cast<size_t>(gp)]->ValueAt(r));
            }
            return key;
          });
      (void)inserted;
      st.ids[r] = id;
    }
    st.states.assign(st.table.size() * naggs, AggState{});
  });

  // Pass 4 (flat partition x aggregate jobs): serial-row-order columnar
  // updates with the global ids. Different aggregates of one partition
  // write disjoint states[] elements, so the jobs are independent; within
  // one (group, aggregate) pair the update order is the column's row order
  // — float partials (dsum) are never folded across morsels.
  RunPartitions(nparts * naggs, [&](size_t j) {
    const size_t p = j / naggs;
    const size_t i = j % naggs;
    PartAgg& st = ps[p];
    const int ap = io[i].arg_pos;
    const int hp = io[i].hidden_pos;
    UpdateAggColumnar(proto.aggregates[i], global,
                      ap >= 0 ? st.dense[static_cast<size_t>(ap)].get()
                              : nullptr,
                      hp >= 0 ? st.dense[static_cast<size_t>(hp)].get()
                              : nullptr,
                      st.ids, naggs, i, &st.states);
  });

  // Pass 5 (partition-parallel): finalize straight into columns: key
  // cells, then per aggregate the output cell (plus a local Avg's hidden
  // partial count) — the legacy row layout, column-major.
  RunPartitions(nparts, [&](size_t p) {
    PartAgg& st = ps[p];
    BatchPartition& sink = out.partitions[p];
    const size_t ngroups = st.table.size();
    sink.rows = ngroups;
    for (size_t j = 0; j < group_pos.size(); ++j) {
      ColumnVector col;
      col.Reserve(ngroups);
      for (size_t id = 0; id < ngroups; ++id) {
        col.AppendValue(st.table.KeyAt(id)[j]);
      }
      sink.columns.push_back(MakeColumn(std::move(col)));
    }
    for (size_t i = 0; i < naggs; ++i) {
      const AggregateDesc& a = proto.aggregates[i];
      ColumnVector col;
      col.Reserve(ngroups);
      for (size_t id = 0; id < ngroups; ++id) {
        col.AppendValue(
            FinalizeAggCell(a, st.states[id * naggs + i], global, local));
      }
      sink.columns.push_back(MakeColumn(std::move(col)));
      if (local && a.hidden_count != 0) {
        ColumnVector hid;
        hid.Reserve(ngroups);
        for (size_t id = 0; id < ngroups; ++id) {
          hid.AppendValue(Value::Int(st.states[id * naggs + i].count));
        }
        sink.columns.push_back(MakeColumn(std::move(hid)));
      }
    }
  });

  // Stream aggregates deliver rows ordered on their chosen sort order.
  if (node.kind == PhysicalOpKind::kStreamAgg && !node.sort_spec.Empty()) {
    std::vector<int> positions = out.schema.PositionsOf(node.sort_spec.cols);
    RunPartitions(out.partitions.size(), [&](size_t p) {
      out.partitions[p] = SortedPartition(out.partitions[p], positions);
    });
  }
  return out;
}

Result<BatchData> Executor::EvalJoinBatch(const PhysicalNode& node,
                                          BatchData left, BatchData right,
                                          ExecMetrics* metrics) {
  const LogicalNode& proto = *node.proto;
  if (left.partitions.size() != right.partitions.size()) {
    return Status::ExecutionError(
        "join inputs have different partition counts (" +
        std::to_string(left.partitions.size()) + " vs " +
        std::to_string(right.partitions.size()) + ")");
  }
  std::vector<int> lpos, rpos;
  for (const auto& [l, r] : proto.join_keys) {
    lpos.push_back(left.schema.PositionOf(l));
    rpos.push_back(right.schema.PositionOf(r));
  }
  BatchData out;
  out.schema = proto.schema();
  out.partitions.resize(left.partitions.size());
  metrics->batches_evaluated +=
      LiveBatches(right, batch_size_) + LiveBatches(left, batch_size_);

  const size_t nleft = left.schema.columns().size();
  const size_t nright = right.schema.columns().size();
  // Residual predicate positions in the joined (left ++ right) schema.
  struct ResidualIo {
    int lhs_pos = -1;
    int rhs_pos = -1;  // -1: literal side
  };
  std::vector<ResidualIo> rio;
  for (const BoundPredicate& pred : proto.predicates) {
    ResidualIo r;
    r.lhs_pos = out.schema.PositionOf(pred.lhs);
    if (pred.rhs_is_column) r.rhs_pos = out.schema.PositionOf(pred.rhs);
    rio.push_back(r);
  }

  const size_t nparts = left.partitions.size();
  const size_t width = nleft + nright;

  // Per-partition state threaded through the passes below.
  struct PartJoin {
    std::vector<ColumnPtr> bcols, pcols;  ///< dense build/probe views
    size_t bn = 0, pn = 0;
    std::vector<uint64_t> bh, ph;  ///< shared hash accumulators
    RowKeyTable table{0};
    std::vector<std::vector<uint32_t>> rows_by_key;
    std::vector<SelectionVector> mli, mbi;  ///< per probe morsel
    SelectionVector li, bi;  ///< surviving pairs, legacy emit order
  };
  std::vector<PartJoin> js(nparts);
  std::vector<size_t> blive(nparts), plive(nparts);

  // Pass 1 (partition-parallel): dense live views of both sides (all
  // columns: the output gathers every cell of each surviving pair).
  RunPartitions(nparts, [&](size_t p) {
    PartJoin& st = js[p];
    st.bcols.resize(nright);
    st.pcols.resize(nleft);
    for (size_t j = 0; j < nright; ++j) {
      st.bcols[j] = DenseColumn(right.partitions[p], static_cast<int>(j));
    }
    for (size_t j = 0; j < nleft; ++j) {
      st.pcols[j] = DenseColumn(left.partitions[p], static_cast<int>(j));
    }
    st.bn = right.partitions[p].LiveRows();
    st.pn = left.partitions[p].LiveRows();
    st.bh.assign(st.bn, kRowKeySeed);
    st.ph.assign(st.pn, kRowKeySeed);
    st.mli.resize(static_cast<size_t>(NumBatches(st.pn, morsel_size_)));
    st.mbi.resize(st.mli.size());
  });
  for (size_t p = 0; p < nparts; ++p) {
    blive[p] = js[p].bn;
    plive[p] = js[p].pn;
  }

  // Pass 2 (morsel-parallel): hash the build keys — the data-parallel half
  // of the build; each morsel writes a disjoint hash-array slice.
  RunMorsels(blive, metrics, [&](size_t p, size_t b, size_t e) {
    PartJoin& st = js[p];
    for (int rp : rpos) {
      HashColumnCells(*st.bcols[static_cast<size_t>(rp)], b, e,
                      st.bh.data());
    }
  });

  // Pass 3 (partition-parallel): build each partition's table in one
  // serial-row-order scan over the precomputed hashes — first-occurrence
  // insertion order and ascending per-key row lists are the serial ones by
  // construction, with no morsel-table fold to pay for.
  RunPartitions(nparts, [&](size_t p) {
    PartJoin& st = js[p];
    st.table = RowKeyTable(st.bn);
    for (size_t r = 0; r < st.bn; ++r) {
      auto [id, inserted] = st.table.FindOrInsertHashed(
          st.bh[r],
          [&](const Row& key) {
            for (size_t j = 0; j < rpos.size(); ++j) {
              const ColumnVector& col =
                  *st.bcols[static_cast<size_t>(rpos[j])];
              if (!col.CellEquals(r, key[j])) return false;
            }
            return true;
          },
          [&] {
            Row key;
            key.reserve(rpos.size());
            for (int rp : rpos) {
              key.push_back(st.bcols[static_cast<size_t>(rp)]->ValueAt(r));
            }
            return key;
          });
      if (inserted) st.rows_by_key.emplace_back();
      st.rows_by_key[id].push_back(static_cast<uint32_t>(r));
    }
  });

  // Pass 4 (morsel-parallel): hash this morsel's probe keys and scan. The
  // emit order inside a morsel is the legacy one (probe row order outer,
  // build insertion order within a key group), collected per morsel.
  RunMorsels(plive, metrics, [&](size_t p, size_t b, size_t e) {
    PartJoin& st = js[p];
    const size_t m = b / morsel_size_;
    for (int lp : lpos) {
      HashColumnCells(*st.pcols[static_cast<size_t>(lp)], b, e,
                      st.ph.data());
    }
    SelectionVector& li = st.mli[m];
    SelectionVector& bi = st.mbi[m];
    auto cell = [&](int pos, uint32_t pi, uint32_t bri) {
      return pos < static_cast<int>(nleft)
                 ? st.pcols[static_cast<size_t>(pos)]->ValueAt(pi)
                 : st.bcols[static_cast<size_t>(pos) - nleft]->ValueAt(bri);
    };
    for (size_t i = b; i < e; ++i) {
      size_t id = st.table.FindHashed(st.ph[i], [&](const Row& key) {
        for (size_t j = 0; j < lpos.size(); ++j) {
          const ColumnVector& col = *st.pcols[static_cast<size_t>(lpos[j])];
          if (!col.CellEquals(i, key[j])) return false;
        }
        return true;
      });
      if (id == RowKeyTable::kNotFound) continue;
      for (uint32_t bld : st.rows_by_key[id]) {
        bool pass = true;
        for (size_t k = 0; k < rio.size(); ++k) {
          const BoundPredicate& pred = proto.predicates[k];
          Value lv = cell(rio[k].lhs_pos, static_cast<uint32_t>(i), bld);
          Value rv = rio[k].rhs_pos >= 0
                         ? cell(rio[k].rhs_pos, static_cast<uint32_t>(i), bld)
                         : pred.literal;
          if (!PredicatePassCells(pred.op, lv, rv)) {
            pass = false;
            break;
          }
        }
        if (pass) {
          li.push_back(static_cast<uint32_t>(i));
          bi.push_back(bld);
        }
      }
    }
  });

  // Pass 5 (partition-parallel): concatenate the per-morsel pair lists in
  // morsel order — probe row order overall, i.e. the serial emit order.
  RunPartitions(nparts, [&](size_t p) {
    PartJoin& st = js[p];
    size_t total = 0;
    for (const SelectionVector& s : st.mli) total += s.size();
    st.li.reserve(total);
    st.bi.reserve(total);
    for (size_t m = 0; m < st.mli.size(); ++m) {
      st.li.insert(st.li.end(), st.mli[m].begin(), st.mli[m].end());
      st.bi.insert(st.bi.end(), st.mbi[m].begin(), st.mbi[m].end());
    }
    st.mli.clear();
    st.mbi.clear();
    out.partitions[p].rows = st.li.size();
    out.partitions[p].columns.resize(width);
  });

  // Pass 6 (flat partition x column jobs): gather the output columns.
  RunPartitions(nparts * width, [&](size_t j) {
    const size_t p = j / width;
    const size_t c = j % width;
    PartJoin& st = js[p];
    out.partitions[p].columns[c] = MakeColumn(
        c < nleft ? GatherColumn(*st.pcols[c], st.li)
                  : GatherColumn(*st.bcols[c - nleft], st.bi));
  });
  return out;
}

BatchData Executor::ExchangeBatch(const PhysicalNode& node, BatchData in,
                                  ExecMetrics* metrics, bool preserve_order) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.exchange_cols.ToVector());
  metrics->bytes_shuffled += in.TotalLiveBytes();
  metrics->rows_shuffled += in.TotalLiveRows();
  metrics->batches_evaluated += LiveBatches(in, batch_size_);

  const size_t nsrc = in.partitions.size();
  const size_t width = in.schema.columns().size();
  // Phase 1: densify the key columns per source (partition-parallel), then
  // hash and bin live physical row indices per (source, morsel,
  // destination) in one flat morsel pass — each job owns its bin row.
  std::vector<size_t> live(nsrc);
  std::vector<std::vector<ColumnPtr>> key_cols(nsrc);
  std::vector<std::vector<uint64_t>> hashes(nsrc);
  std::vector<std::vector<std::vector<SelectionVector>>> dsel(nsrc);
  RunPartitions(nsrc, [&](size_t s) {
    const BatchPartition& part = in.partitions[s];
    const size_t n = part.LiveRows();
    live[s] = n;
    key_cols[s].resize(width);
    hashes[s].assign(n, kRowKeySeed);
    dsel[s].assign(static_cast<size_t>(NumBatches(n, morsel_size_)),
                   std::vector<SelectionVector>(machines));
    for (int pos : positions) {
      ColumnPtr& col = key_cols[s][static_cast<size_t>(pos)];
      if (col == nullptr) col = DenseColumn(part, pos);
    }
  });
  RunMorsels(live, metrics, [&](size_t s, size_t b, size_t e) {
    const BatchPartition& part = in.partitions[s];
    std::vector<SelectionVector>& bins = dsel[s][b / morsel_size_];
    for (int pos : positions) {
      HashColumnCells(*key_cols[s][static_cast<size_t>(pos)], b, e,
                      hashes[s].data());
    }
    for (size_t k = b; k < e; ++k) {
      size_t d = hashes[s][k] % machines;
      bins[d].push_back(part.filtered ? part.sel[k]
                                      : static_cast<uint32_t>(k));
    }
  });
  // Phase 2: per destination, concatenate the column slices source-major,
  // morsel order within a source — the exact row order of the legacy
  // two-phase move scatter.
  BatchData out;
  out.schema = std::move(in.schema);
  out.partitions.resize(machines);
  RunPartitions(machines, [&](size_t d) {
    size_t total = 0;
    for (size_t s = 0; s < nsrc; ++s) {
      for (const std::vector<SelectionVector>& bins : dsel[s]) {
        total += bins[d].size();
      }
    }
    BatchPartition& sink = out.partitions[d];
    sink.rows = total;
    sink.columns.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      ColumnVector acc;
      acc.Reserve(total);
      for (size_t s = 0; s < nsrc; ++s) {
        for (const std::vector<SelectionVector>& bins : dsel[s]) {
          if (bins[d].empty()) continue;
          acc.AppendColumn(*in.partitions[s].columns[j], &bins[d]);
        }
      }
      sink.columns.push_back(MakeColumn(std::move(acc)));
    }
  });
  if (preserve_order && !node.delivered.sort.Empty()) {
    std::vector<int> sort_pos =
        out.schema.PositionsOf(node.delivered.sort.cols);
    RunPartitions(out.partitions.size(), [&](size_t p) {
      out.partitions[p] = SortedPartition(out.partitions[p], sort_pos);
    });
  }
  return out;
}

BatchData Executor::RangeExchangeBatch(const PhysicalNode& node, BatchData in,
                                       ExecMetrics* metrics) {
  const size_t machines = static_cast<size_t>(cluster_.machines);
  std::vector<int> positions =
      in.schema.PositionsOf(node.delivered.partitioning.range_cols);
  const size_t nkeys = positions.size();
  const size_t nsrc = in.partitions.size();
  metrics->bytes_shuffled += in.TotalLiveBytes();
  metrics->rows_shuffled += in.TotalLiveRows();
  metrics->batches_evaluated += LiveBatches(in, batch_size_);

  // Dense live views of the key columns per source, and the whole key
  // multiset concatenated (partition order, live order) for the boundary
  // scan.
  std::vector<std::vector<ColumnPtr>> pkeys(nsrc);
  RunPartitions(nsrc, [&](size_t s) {
    pkeys[s].resize(nkeys);
    for (size_t k = 0; k < nkeys; ++k) {
      pkeys[s][k] = DenseColumn(in.partitions[s], positions[k]);
    }
  });
  const size_t total_live = static_cast<size_t>(in.TotalLiveRows());
  std::vector<ColumnVector> all(nkeys);
  for (size_t k = 0; k < nkeys; ++k) {
    all[k].Reserve(total_live);
    for (size_t s = 0; s < nsrc; ++s) {
      all[k].AppendColumn(*pkeys[s][k], nullptr);
    }
  }

  // Boundary computation by exact quantiles over the key multiset — the
  // simulation stand-in for SCOPE's sampling pass, now columnar: sort an
  // index permutation with the row path's exact cell comparator and read
  // the boundary rows at the legacy quantile indices. Value's ordering is
  // total, so the value sequence of the sorted multiset — and with it every
  // boundary — is identical to the legacy row sort's.
  std::vector<uint32_t> perm(total_live);
  for (uint32_t i = 0; i < static_cast<uint32_t>(total_live); ++i) {
    perm[i] = i;
  }
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < nkeys; ++k) {
      int c = CompareCells(all[k], a, all[k], b);
      if (c != 0) return c < 0;
    }
    return false;
  });
  std::vector<Row> boundaries;
  for (size_t i = 1; i < machines && !perm.empty(); ++i) {
    const uint32_t r = perm[i * perm.size() / machines];
    Row b;
    b.reserve(nkeys);
    for (size_t k = 0; k < nkeys; ++k) b.push_back(all[k].ValueAt(r));
    boundaries.push_back(std::move(b));
  }

  // Scatter: morsel jobs compute each live row's destination — an
  // upper_bound over the boundaries, cell-vs-Value comparisons, identical
  // outcomes to the legacy key-vector upper_bound — and bin the physical
  // row indices per (source, morsel, destination).
  std::vector<size_t> live(nsrc);
  std::vector<std::vector<std::vector<SelectionVector>>> bins(nsrc);
  for (size_t s = 0; s < nsrc; ++s) {
    live[s] = in.partitions[s].LiveRows();
    bins[s].assign(static_cast<size_t>(NumBatches(live[s], morsel_size_)),
                   std::vector<SelectionVector>(machines));
  }
  RunMorsels(live, metrics, [&](size_t s, size_t b, size_t e) {
    const BatchPartition& part = in.partitions[s];
    std::vector<SelectionVector>& mb = bins[s][b / morsel_size_];
    auto less_than_boundary = [&](size_t row, const Row& bound) {
      for (size_t k = 0; k < nkeys; ++k) {
        int c = CompareCellValue(*pkeys[s][k], row, bound[k]);
        if (c != 0) return c < 0;
      }
      return false;  // equal keys go right of the boundary (upper_bound)
    };
    for (size_t i = b; i < e; ++i) {
      size_t lo = 0, hi = boundaries.size();
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (less_than_boundary(i, boundaries[mid])) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      mb[lo].push_back(part.filtered ? part.sel[i]
                                     : static_cast<uint32_t>(i));
    }
  });

  // Gather per destination: source-major, morsel order within a source —
  // the legacy two-phase scatter's exact row order.
  BatchData out;
  out.schema = std::move(in.schema);
  out.partitions.resize(machines);
  const size_t width = out.schema.columns().size();
  RunPartitions(machines, [&](size_t d) {
    size_t total = 0;
    for (size_t s = 0; s < nsrc; ++s) {
      for (const std::vector<SelectionVector>& mb : bins[s]) {
        total += mb[d].size();
      }
    }
    BatchPartition& sink = out.partitions[d];
    sink.rows = total;
    sink.columns.reserve(width);
    for (size_t j = 0; j < width; ++j) {
      ColumnVector acc;
      acc.Reserve(total);
      for (size_t s = 0; s < nsrc; ++s) {
        for (const std::vector<SelectionVector>& mb : bins[s]) {
          if (mb[d].empty()) continue;
          acc.AppendColumn(*in.partitions[s].columns[j], &mb[d]);
        }
      }
      sink.columns.push_back(MakeColumn(std::move(acc)));
    }
  });
  return out;
}

}  // namespace scx
