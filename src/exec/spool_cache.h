#ifndef SCX_EXEC_SPOOL_CACHE_H_
#define SCX_EXEC_SPOOL_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "exec/executor.h"

namespace scx {

/// Default byte budget for spooled intermediates: SCX_SPOOL_CACHE_BYTES, or
/// 256 MiB. Shared by the run-local spool cache and the cross-query cache.
int64_t DefaultSpoolCacheBytes();

/// Resolves ClusterConfig::spool_cache_bytes to an effective budget:
/// 0 -> DefaultSpoolCacheBytes(), negative -> unlimited (INT64_MAX).
int64_t ResolveSpoolBudget(int64_t configured);

/// Canonical structural serialization of the physical sub-DAG rooted at
/// `node`. Column ids are renamed to dense first-visit indices during a
/// deterministic pre-order walk, so two structurally equal sub-DAGs whose
/// column ids differ by a monotone renumbering (the case produced by binding
/// the same script text twice) serialize identically; shared interior nodes
/// are emitted once and referenced by `@<id>`. Only semantic payload is
/// included — extract column names bind file columns and are kept, while
/// result/output naming is dropped. Because the serialization is exact
/// (string compare, not a hash), a cache keyed on it can never return data
/// for a different computation: an isomorphism the renaming cannot see is a
/// safe miss, never a wrong hit.
std::string CanonicalSubDagDescription(const PhysicalNodePtr& node);

/// Key of one cross-query spool cache entry. The catalog version ties the
/// entry to the exact catalog state (file stats, data seeds) it was computed
/// from; the machine count pins the partition layout; `batch` separates the
/// row-vector and column-batch materialization formats.
struct SpoolCacheKey {
  std::string canon;
  uint64_t catalog_version = 0;
  int machines = 0;
  bool batch = false;

  friend bool operator<(const SpoolCacheKey& a, const SpoolCacheKey& b) {
    return std::tie(a.canon, a.catalog_version, a.machines, a.batch) <
           std::tie(b.canon, b.catalog_version, b.machines, b.batch);
  }
  friend bool operator==(const SpoolCacheKey& a, const SpoolCacheKey& b) {
    return a.canon == b.canon && a.catalog_version == b.catalog_version &&
           a.machines == b.machines && a.batch == b.batch;
  }
};

/// Aggregate counters of one CrossQuerySpoolCache.
struct SpoolCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t bytes_evicted = 0;
  int64_t bytes_used = 0;
  int64_t entries = 0;
};

/// A byte-budgeted cache of materialized spool results that outlives any
/// single execution, so a sub-DAG computed for one script serves later
/// scripts (and later batches) without re-execution. Entries hold immutable
/// data — CompactPartition'd shared columns on the batch path, plain row
/// vectors on the row path — and a hit hands back shared_ptr copies / row
/// copies, never aliasing mutable state.
///
/// Eviction is cost-aware and deterministic: when an insertion pushes the
/// cache over its byte budget, entries are dropped in increasing order of
/// benefit = recompute_cost x (1 + observed reuse), ties broken by smallest
/// insertion sequence (oldest first), until the budget holds again.
class CrossQuerySpoolCache {
 private:
  struct Entry;  // declared ahead of PinnedEntry, defined below

 public:
  /// `budget_bytes` as configured (ClusterConfig semantics: 0 = default,
  /// negative = unlimited).
  explicit CrossQuerySpoolCache(int64_t budget_bytes)
      : budget_(ResolveSpoolBudget(budget_bytes)) {}

  /// Returns a copy of the cached rows, or nullopt. A hit bumps the entry's
  /// observed-reuse count (raising its eviction benefit).
  std::optional<PartitionedData> LookupRows(const SpoolCacheKey& key);
  std::optional<BatchData> LookupBatch(const SpoolCacheKey& key);

  /// Zero-copy read handle on one cache entry, used by fault recovery
  /// (docs/architecture.md §17). While the handle lives the entry is pinned:
  /// eviction skips it and a same-key insert keeps the pinned entry in
  /// place, so the referenced data stays valid even while concurrent
  /// executions insert into (and shrink) the cache — the eviction-racing-a-
  /// recovery-re-read bug class. Pinning deliberately bumps neither the
  /// entry's observed reuse nor the hit/miss stats: a recovery re-read must
  /// not change future eviction victims (fault-vs-clean identity, oracle 8).
  class PinnedEntry {
   public:
    PinnedEntry() = default;
    PinnedEntry(PinnedEntry&& o) noexcept : cache_(o.cache_), entry_(o.entry_) {
      o.cache_ = nullptr;
      o.entry_ = nullptr;
    }
    PinnedEntry& operator=(PinnedEntry&& o) noexcept {
      if (this != &o) {
        Release();
        cache_ = o.cache_;
        entry_ = o.entry_;
        o.cache_ = nullptr;
        o.entry_ = nullptr;
      }
      return *this;
    }
    PinnedEntry(const PinnedEntry&) = delete;
    PinnedEntry& operator=(const PinnedEntry&) = delete;
    ~PinnedEntry() { Release(); }

    /// False on a cache miss (nothing pinned).
    explicit operator bool() const { return entry_ != nullptr; }
    /// The pinned row materialization (row-format entries only).
    const PartitionedData& rows() const;
    /// The pinned batch materialization (batch-format entries only).
    const BatchData& batch() const;

    /// Unpins early (idempotent; also run by the destructor).
    void Release();

   private:
    friend class CrossQuerySpoolCache;
    PinnedEntry(CrossQuerySpoolCache* cache, Entry* entry)
        : cache_(cache), entry_(entry) {}
    CrossQuerySpoolCache* cache_ = nullptr;
    Entry* entry_ = nullptr;
  };

  /// Pins the entry under `key` for zero-copy reading, or returns an empty
  /// handle on miss (wrong-format entries miss too). No reuse bump, no
  /// hit/miss accounting — see PinnedEntry.
  PinnedEntry Pin(const SpoolCacheKey& key);

  /// Inserts (replacing any same-key entry), then enforces the byte budget.
  /// Bytes dropped by eviction are added to *evicted_bytes when non-null.
  void InsertRows(const SpoolCacheKey& key, PartitionedData data,
                  double recompute_cost, int64_t* evicted_bytes = nullptr);
  void InsertBatch(const SpoolCacheKey& key, BatchData data,
                   double recompute_cost, int64_t* evicted_bytes = nullptr);

  SpoolCacheStats stats() const;
  int64_t budget_bytes() const { return budget_; }

 private:
  struct Entry {
    PartitionedData rows;
    BatchData batch;
    int64_t bytes = 0;
    double recompute_cost = 0;
    int64_t reuse = 0;  ///< hits since insertion
    int64_t seq = 0;    ///< insertion order (eviction tie-break)
    /// Live PinnedEntry handles. While > 0 the entry can be neither evicted
    /// nor replaced (map nodes are address-stable, so the handle's pointer
    /// stays valid for its whole lifetime).
    int64_t pins = 0;
  };

  void Unpin(Entry* entry);

  void InsertLocked(const SpoolCacheKey& key, Entry entry,
                    int64_t* evicted_bytes);
  void EnforceBudgetLocked(int64_t* evicted_bytes);

  mutable std::mutex mu_;
  const int64_t budget_;
  int64_t next_seq_ = 0;
  int64_t bytes_used_ = 0;
  SpoolCacheStats stats_;
  std::map<SpoolCacheKey, Entry> entries_;
};

}  // namespace scx

#endif  // SCX_EXEC_SPOOL_CACHE_H_
