#ifndef SCX_EXEC_EXECUTOR_H_
#define SCX_EXEC_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/worker_pool.h"
#include "cost/cost_model.h"
#include "exec/column_batch.h"
#include "opt/physical_plan.h"

namespace scx {

class CrossQuerySpoolCache;
struct SpoolCacheKey;

/// Rows of one operator's output, split across the simulated cluster's
/// machines. Row vectors are positionally aligned with the producing
/// operator's schema.
struct PartitionedData {
  Schema schema;
  std::vector<std::vector<Row>> partitions;

  int64_t TotalRows() const;
  int64_t TotalBytes() const;
  /// All rows concatenated (partition order).
  std::vector<Row> Gathered() const;
  /// Gathered(), but moving the rows out; the partitions are left empty.
  std::vector<Row> TakeGathered();
};

/// Counters accumulated while executing a plan on the simulated cluster.
struct ExecMetrics {
  int64_t rows_extracted = 0;
  /// Bytes read from the simulated store by Extract operators. Together
  /// with bytes_shuffled and bytes_spooled this is the run's total data
  /// movement — the quantity the batch-vs-sequential oracle bounds.
  int64_t bytes_extracted = 0;
  int64_t rows_shuffled = 0;
  int64_t bytes_shuffled = 0;   ///< exchanged over the simulated network
  int64_t bytes_spooled = 0;    ///< materialized by Spool operators
  int64_t rows_spooled = 0;     ///< rows materialized by Spool operators
  int64_t spool_executions = 0; ///< distinct spool materializations
  int64_t spool_reads = 0;      ///< total consumer reads of spools
  int64_t spool_cache_hits = 0; ///< spool_reads served from the cache
  /// spool_cache_hits served by the engine's cross-query spool cache (a
  /// sub-DAG materialized by an earlier execution). 0 unless the executor
  /// was built with a cross-query cache (Engine::SubmitBatch path).
  int64_t cross_query_spool_hits = 0;
  /// Bytes of spooled intermediates dropped to keep spool storage within
  /// the ClusterConfig::spool_cache_bytes budget (run-local evictions plus
  /// cross-query evictions triggered by this run's insertions). Evicted
  /// spools recompute on their next read, so results are unaffected.
  int64_t spool_bytes_evicted = 0;
  int64_t operator_invocations = 0;
  int64_t rows_output = 0;
  /// Column batches processed by the vectorized kernels (filter, project,
  /// compute, aggregate, join build/probe, hash-exchange key hashing).
  /// 0 when batch_size is 1 (the legacy row path).
  int64_t batches_evaluated = 0;
  /// Structurally duplicate scalar subtrees eliminated by the
  /// expression-CSE pass, summed over Compute operator invocations.
  int64_t exprs_deduped = 0;
  /// Rows that crossed an unsanctioned row<->column conversion inside the
  /// batch pipeline, counted per direction (both sides of any operator that
  /// bridged back to the row path). Output's columns->rows sink conversion
  /// is not counted — it would only restate rows_output now that every
  /// operator is batch-native. 0 when the pipeline never leaves columns,
  /// and 0 at batch_size 1 (the row path never converts).
  int64_t rows_converted = 0;
  /// Operators where the batch pipeline fell back to the legacy row
  /// implementation. 0 since the range exchange went batch-native; kept as
  /// a tripwire for future bridges. 0 at batch_size 1.
  int64_t batch_pipeline_breaks = 0;
  /// Morsel jobs scheduled by the intra-partition parallel stages (fused
  /// chain evaluation, aggregate/join input scans, exchange key hashing).
  /// A function of the data and morsel_size only — never of the thread
  /// count. 0 at batch_size 1.
  int64_t morsels_evaluated = 0;
  /// Morsels beyond the first of their partition, summed over the same
  /// stages: the jobs that partition-granularity scheduling could not have
  /// overlapped with another thread. Deterministic for any thread count.
  int64_t morsel_steal_count = 0;

  // --- Fault-injection / recovery counters (docs/architecture.md §17). All
  // stay 0 unless ClusterConfig::fault_plan is enabled; none of the counters
  // above may ever change when a FaultPlan is armed (the fault-vs-clean
  // identity contract, scxcheck oracle 8).

  /// Partition outputs lost to injected machine failures.
  int64_t machine_failures_injected = 0;
  /// Failed partitions restored (always equals machine_failures_injected
  /// after a successful run: every failure is recovered).
  int64_t partitions_recovered = 0;
  /// Rows produced by recovery recomputation of lost sub-DAGs. 0 when every
  /// recovery was served by a surviving spool.
  int64_t rows_recomputed = 0;
  /// Recovery reads served by a surviving spool (run-local or cross-query)
  /// instead of recomputation.
  int64_t recovery_spool_hits = 0;
  /// Bytes extracted/shuffled/spooled while recomputing lost sub-DAGs —
  /// recovery's own data movement, kept separate so the legacy byte counters
  /// stay clean-run-identical. Oracle 9 bounds it by the pure-recomputation
  /// arm (FaultPlan::disable_recovery_spool_reads).
  int64_t recovery_bytes_moved = 0;
  /// Simulated makespan: per operator pass, the maximum over machines of
  /// (live rows x FaultPlan::StragglerMultiplier), summed over passes. Only
  /// accounted while a FaultPlan is enabled; a function of the plan, the
  /// data, and the batch size — never of threads or morsels.
  int64_t sim_makespan_ticks = 0;

  /// Output rows per OUTPUT path.
  std::map<std::string, std::vector<Row>> outputs;
};

/// The metrics counters as a JSON object (outputs omitted), in declaration
/// order; scx_cli --json embeds this under "execution".
std::string ExecMetricsToJson(const ExecMetrics& m);

/// Canonical (sorted) form of an output row set, for comparing the results
/// of two plans.
std::vector<Row> CanonicalRows(const std::vector<Row>& rows);
std::vector<Row> CanonicalRows(std::vector<Row>&& rows);

/// All outputs of one run in canonical form (each path's rows sorted).
std::map<std::string, std::vector<Row>> CanonicalOutputs(const ExecMetrics& m);

/// True iff both executions produced identical rows for identical paths.
/// Each side is canonicalized exactly once.
bool SameOutputs(const ExecMetrics& a, const ExecMetrics& b);

/// Executes physical plans on a deterministic simulated cluster: extract
/// synthesizes rows from the catalog's data specs, exchanges re-bucket rows
/// by key hash across machines (with byte accounting), and spools
/// materialize once per plan-DAG node regardless of consumer count.
///
/// The executor validates the optimizer's property reasoning at runtime:
/// aggregations and joins assume their inputs are co-located the way the
/// delivered properties claim, so a property bug surfaces as a result
/// mismatch against the conventional plan.
///
/// Per-machine partitions are the unit of parallelism: the plan DAG is
/// walked by one master thread, and each operator evaluates its partitions
/// on a WorkerPool of cluster.exec_threads threads (1 = the exact serial
/// path). Every partition job writes only its own output slot and all
/// merge/concatenation happens in fixed partition order, so counters and
/// output rows are bit-identical for every thread count. Inside the batch
/// pipeline the hot scans additionally split each partition into
/// cluster.morsel_size-row morsels scheduled as one flat job list, with
/// per-morsel output slots merged in fixed morsel order — so a skewed
/// partition no longer serializes its stage, at any morsel size and thread
/// count bit-identically (docs/architecture.md §15).
///
/// When cluster.batch_size > 1 the plan runs on the batch-native pipeline:
/// operators exchange BatchData (immutable shared columns + selection
/// vectors) end to end, Filter/Compute/Project chains fuse into one
/// cross-stage expression schedule (plan/expr_cse.h), spools cache column
/// batches whose readers share storage, and exchanges scatter column
/// slices by a precomputed hash column. Rows exist only at Output and at
/// explicitly bridged operators (ExecMetrics::rows_converted /
/// batch_pipeline_breaks). batch_size 1 keeps the exact legacy
/// row-at-a-time loops as the differential anchor; both pipelines are
/// bit-identical in raw outputs and legacy counters by construction — see
/// docs/architecture.md §14.
class Executor {
 public:
  explicit Executor(ClusterConfig cluster)
      : cluster_(cluster),
        threads_(cluster.exec_threads > 0 ? cluster.exec_threads
                                          : DefaultNumThreads()),
        batch_size_(cluster.batch_size > 0
                        ? static_cast<size_t>(cluster.batch_size)
                        : static_cast<size_t>(DefaultBatchSize())),
        morsel_size_(cluster.morsel_size > 0
                         ? static_cast<size_t>(cluster.morsel_size)
                         : static_cast<size_t>(DefaultMorselSize())) {}

  /// As above, but spool reads may additionally be served by (and fresh
  /// materializations inserted into) `cross_cache`, the engine-owned
  /// cross-query spool cache. `catalog_version` becomes part of every cache
  /// key, so entries never survive a catalog change. `cross_cache` may be
  /// nullptr (identical to the single-argument constructor).
  Executor(ClusterConfig cluster, CrossQuerySpoolCache* cross_cache,
           uint64_t catalog_version)
      : Executor(cluster) {
    cross_cache_ = cross_cache;
    catalog_version_ = catalog_version;
  }

  /// Runs the plan; returns counters and the produced outputs.
  Result<ExecMetrics> Execute(const PhysicalNodePtr& plan);

 private:
  /// Evaluates `node`, then (when a FaultPlan is armed) injects this pass's
  /// machine failures and recovers each lost partition — from a surviving
  /// spool when possible, by deterministic side-effect-free recomputation
  /// otherwise. One branch when no plan is armed.
  Result<PartitionedData> Eval(const PhysicalNodePtr& node,
                               ExecMetrics* metrics);
  /// The operator switch proper (no fault handling).
  Result<PartitionedData> EvalInner(const PhysicalNodePtr& node,
                                    ExecMetrics* metrics);

  Result<PartitionedData> EvalExtract(const PhysicalNode& node,
                                      ExecMetrics* metrics);
  Result<PartitionedData> EvalAggregate(const PhysicalNode& node,
                                        PartitionedData in,
                                        ExecMetrics* metrics);
  Result<PartitionedData> EvalJoin(const PhysicalNode& node,
                                   PartitionedData left,
                                   PartitionedData right,
                                   ExecMetrics* metrics);
  PartitionedData Exchange(const PhysicalNode& node, PartitionedData in,
                           ExecMetrics* metrics, bool preserve_order);

  // --- Batch-native pipeline (batch_executor.cc), used at batch_size > 1.

  /// Fault-injection wrapper around EvalBatchInner, mirroring Eval.
  Result<BatchData> EvalBatch(const PhysicalNodePtr& node,
                              ExecMetrics* metrics);
  Result<BatchData> EvalBatchInner(const PhysicalNodePtr& node,
                                   ExecMetrics* metrics);
  Result<BatchData> EvalExtractBatch(const PhysicalNode& node,
                                     ExecMetrics* metrics);
  /// Evaluates the maximal Filter/Compute/Project chain headed at `head`
  /// through one fused cross-stage expression schedule.
  Result<BatchData> EvalChainBatch(const PhysicalNodePtr& head,
                                   ExecMetrics* metrics);
  Result<BatchData> EvalAggregateBatch(const PhysicalNode& node, BatchData in,
                                       ExecMetrics* metrics);
  Result<BatchData> EvalJoinBatch(const PhysicalNode& node, BatchData left,
                                  BatchData right, ExecMetrics* metrics);
  BatchData ExchangeBatch(const PhysicalNode& node, BatchData in,
                          ExecMetrics* metrics, bool preserve_order);
  /// Batch-native range repartitioning: columnar quantile boundaries plus a
  /// morsel-binned scatter, with no row bridge (batch_pipeline_breaks and
  /// rows_converted stay 0).
  BatchData RangeExchangeBatch(const PhysicalNode& node, BatchData in,
                               ExecMetrics* metrics);

  /// Re-buckets `in` into `machines` partitions. `dest_fill(rows, dest)`
  /// computes every row's destination for one source partition (so the hash
  /// exchange can vectorize the key hashing per batch). Two-phase move
  /// scatter: each source partition fills per-destination buffers with
  /// exact reserved capacity, then each destination concatenates them
  /// source-major — the exact row order of the serial push_back loop.
  /// Defined inline below so both the legacy path (executor.cc) and the
  /// batch pipeline's row bridge (batch_executor.cc) can instantiate it.
  template <typename DestFillFn>
  PartitionedData ScatterByDest(PartitionedData in, DestFillFn dest_fill);

  /// Runs fn(0..n-1), on the pool when exec_threads > 1 and n > 1, serially
  /// otherwise. fn must write only to state owned by its index.
  void RunPartitions(size_t n, const std::function<void(size_t)>& fn);

  /// Splits each partition's live[p] rows into morsel_size_-row ranges and
  /// runs fn(p, begin, end) for every range in one flat pool pass, so a
  /// single hot partition spreads across all threads. Ranges index the live
  /// row sequence (the selection when filtered, physical rows otherwise);
  /// morsel m of partition p covers [m*morsel_size_, ...), so a job can
  /// derive its slot as begin / morsel_size_. fn must write only to state
  /// owned by its (partition, morsel) slot. Accounts morsels_evaluated and
  /// morsel_steal_count — both functions of `live` alone.
  void RunMorsels(const std::vector<size_t>& live, ExecMetrics* metrics,
                  const std::function<void(size_t, size_t, size_t)>& fn);

  ClusterConfig cluster_;
  int threads_;
  /// Rows per column batch; 1 = the exact legacy row-at-a-time loops.
  size_t batch_size_;
  /// Live rows per intra-partition morsel (batch pipeline only).
  size_t morsel_size_;
  std::unique_ptr<WorkerPool> pool_;  ///< created lazily by RunPartitions
  /// Spool materializations, keyed by plan node identity so a shared spool
  /// executes once per plan DAG. Pointer keys, no ordering needed.
  std::unordered_map<const PhysicalNode*, PartitionedData> spool_cache_;
  /// Batch-pipeline spool materializations: partitions are compacted once
  /// at write time, and every read hands back the same shared immutable
  /// columns (a cache hit copies shared_ptrs, never rows).
  std::unordered_map<const PhysicalNode*, BatchData> batch_spool_cache_;

  // --- Spool byte budget + cross-query cache (spool_cache.h) ---

  /// Registers a fresh run-local spool materialization of `bytes` bytes for
  /// `node`, then evicts run-local entries (lowest recompute-cost x reuse
  /// benefit first, oldest on ties) until the budget holds. Runs only on the
  /// master DAG-walk thread; eviction order depends only on the plan and the
  /// walk order, so it is bit-identical across thread/batch/morsel settings.
  void TrackSpoolInsert(const PhysicalNode* node, int64_t bytes,
                        ExecMetrics* metrics);
  /// Bumps the run-local reuse counter of `node`'s spool entry.
  void TrackSpoolRead(const PhysicalNode* node);
  /// Cross-query cache key of the sub-DAG materialized by spool `node`.
  SpoolCacheKey CrossKeyFor(const PhysicalNode& node, bool batch) const;

  /// Per-entry bookkeeping behind the run-local spool byte budget.
  struct RunSpoolMeta {
    int64_t bytes = 0;
    double recompute_cost = 0;
    int64_t reads = 0;
    int64_t seq = 0;
  };
  std::unordered_map<const PhysicalNode*, RunSpoolMeta> spool_meta_;
  int64_t run_spool_bytes_ = 0;
  int64_t spool_seq_ = 0;
  /// Effective budget (resolved from cluster_.spool_cache_bytes at Execute).
  int64_t spool_budget_ = 0;
  CrossQuerySpoolCache* cross_cache_ = nullptr;
  uint64_t catalog_version_ = 0;

  // --- Fault injection + spool-based recovery (docs/architecture.md §17) ---
  //
  // Injection runs on the master DAG-walk thread after each pass: partition m
  // of the pass with id `pass` (operator_invocations at pass entry, 1-based)
  // is dropped when cluster_.fault_plan.FailsAt(pass, m). Recovery restores
  // the partition from a surviving spool (run-local cache, or cross-query
  // cache via a pinned zero-copy peek) or recomputes the lost sub-DAG in
  // recovery mode: scratch metrics, no spool bookkeeping mutation, no cache
  // insertion, no reuse bumps — so every pre-existing counter and all output
  // rows are bit-identical to the clean run (oracle 8). Recovery work is
  // accounted only in the recovery_* counters.

  /// Injects failures for the pass that produced `out` and recovers them.
  Status InjectFaults(const PhysicalNodePtr& node, int64_t pass,
                      PartitionedData* out, ExecMetrics* metrics);
  Status InjectFaultsBatch(const PhysicalNodePtr& node, int64_t pass,
                           BatchData* out, ExecMetrics* metrics);
  /// Restores partition m of `out` after an injected failure.
  Status RecoverPartition(const PhysicalNodePtr& node, size_t m,
                          PartitionedData* out, ExecMetrics* metrics);
  Status RecoverPartitionBatch(const PhysicalNodePtr& node, size_t m,
                               BatchData* out, ExecMetrics* metrics);
  /// Recovery-mode kSpool evaluation: read-only lookup (run-local cache ->
  /// recovery overlay -> pinned cross-query peek) or recomputation into the
  /// overlay. Never mutates run spool state.
  Result<PartitionedData> RecoverySpoolRows(const PhysicalNodePtr& node,
                                            ExecMetrics* scratch);
  Result<BatchData> RecoverySpoolBatch(const PhysicalNodePtr& node,
                                       ExecMetrics* scratch);

  /// cluster_.fault_plan.Enabled(), resolved once per Execute.
  bool fault_enabled_ = false;
  /// True while recomputing a lost sub-DAG: disables nested injection and
  /// reroutes kSpool to the read-only recovery path.
  bool in_recovery_ = false;
  /// Within-recovery memo of recomputed spool sub-DAGs, so a shared spool
  /// whose materialization was evicted is recomputed once per recovery
  /// event, not once per appearance. Cleared after each recovery.
  std::unordered_map<const PhysicalNode*, PartitionedData> recovery_overlay_;
  std::unordered_map<const PhysicalNode*, BatchData> recovery_batch_overlay_;
};

template <typename DestFillFn>
PartitionedData Executor::ScatterByDest(PartitionedData in,
                                        DestFillFn dest_fill) {
  size_t machines = static_cast<size_t>(cluster_.machines);
  size_t nsrc = in.partitions.size();
  // Phase 1: each source partition moves its rows into per-destination
  // buffers with exact reserved capacity.
  std::vector<std::vector<std::vector<Row>>> buckets(nsrc);
  RunPartitions(nsrc, [&](size_t s) {
    std::vector<Row>& rows = in.partitions[s];
    std::vector<uint32_t> dest(rows.size());
    dest_fill(rows, &dest);
    std::vector<size_t> count(machines, 0);
    for (size_t i = 0; i < rows.size(); ++i) ++count[dest[i]];
    std::vector<std::vector<Row>>& b = buckets[s];
    b.resize(machines);
    for (size_t d = 0; d < machines; ++d) b[d].reserve(count[d]);
    for (size_t i = 0; i < rows.size(); ++i) {
      b[dest[i]].push_back(std::move(rows[i]));
    }
  });
  // Phase 2: each destination concatenates its buffers source-major —
  // exactly the row order the serial per-row push_back loop produced.
  PartitionedData out;
  out.schema = std::move(in.schema);
  out.partitions.resize(machines);
  RunPartitions(machines, [&](size_t d) {
    size_t total = 0;
    for (size_t s = 0; s < nsrc; ++s) total += buckets[s][d].size();
    std::vector<Row>& sink = out.partitions[d];
    sink.reserve(total);
    for (size_t s = 0; s < nsrc; ++s) {
      sink.insert(sink.end(), std::make_move_iterator(buckets[s][d].begin()),
                  std::make_move_iterator(buckets[s][d].end()));
    }
  });
  return out;
}

}  // namespace scx

#endif  // SCX_EXEC_EXECUTOR_H_
