#ifndef SCX_EXEC_EXECUTOR_H_
#define SCX_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "opt/physical_plan.h"

namespace scx {

/// Rows of one operator's output, split across the simulated cluster's
/// machines. Row vectors are positionally aligned with the producing
/// operator's schema.
struct PartitionedData {
  Schema schema;
  std::vector<std::vector<Row>> partitions;

  int64_t TotalRows() const;
  int64_t TotalBytes() const;
  /// All rows concatenated (partition order).
  std::vector<Row> Gathered() const;
};

/// Counters accumulated while executing a plan on the simulated cluster.
struct ExecMetrics {
  int64_t rows_extracted = 0;
  int64_t rows_shuffled = 0;
  int64_t bytes_shuffled = 0;   ///< exchanged over the simulated network
  int64_t bytes_spooled = 0;    ///< materialized by Spool operators
  int64_t spool_executions = 0; ///< distinct spool materializations
  int64_t spool_reads = 0;      ///< total consumer reads of spools
  int64_t operator_invocations = 0;
  int64_t rows_output = 0;
  /// Output rows per OUTPUT path.
  std::map<std::string, std::vector<Row>> outputs;
};

/// Canonical (sorted) form of an output row set, for comparing the results
/// of two plans.
std::vector<Row> CanonicalRows(std::vector<Row> rows);

/// True iff both executions produced identical rows for identical paths.
bool SameOutputs(const ExecMetrics& a, const ExecMetrics& b);

/// Executes physical plans on a deterministic simulated cluster: extract
/// synthesizes rows from the catalog's data specs, exchanges re-bucket rows
/// by key hash across machines (with byte accounting), and spools
/// materialize once per plan-DAG node regardless of consumer count.
///
/// The executor validates the optimizer's property reasoning at runtime:
/// aggregations and joins assume their inputs are co-located the way the
/// delivered properties claim, so a property bug surfaces as a result
/// mismatch against the conventional plan.
class Executor {
 public:
  explicit Executor(ClusterConfig cluster) : cluster_(cluster) {}

  /// Runs the plan; returns counters and the produced outputs.
  Result<ExecMetrics> Execute(const PhysicalNodePtr& plan);

 private:
  Result<PartitionedData> Eval(const PhysicalNodePtr& node,
                               ExecMetrics* metrics);

  Result<PartitionedData> EvalExtract(const PhysicalNode& node,
                                      ExecMetrics* metrics);
  Result<PartitionedData> EvalAggregate(const PhysicalNode& node,
                                        PartitionedData in);
  Result<PartitionedData> EvalJoin(const PhysicalNode& node,
                                   PartitionedData left,
                                   PartitionedData right);
  PartitionedData Exchange(const PhysicalNode& node, PartitionedData in,
                           ExecMetrics* metrics, bool preserve_order);

  ClusterConfig cluster_;
  /// Spool materializations, keyed by plan node identity so a shared spool
  /// executes once per plan DAG.
  std::map<const PhysicalNode*, PartitionedData> spool_cache_;
};

}  // namespace scx

#endif  // SCX_EXEC_EXECUTOR_H_
