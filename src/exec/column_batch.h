#ifndef SCX_EXEC_COLUMN_BATCH_H_
#define SCX_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace scx {

/// Default rows-per-batch for the vectorized executor kernels: the
/// SCX_BATCH_SIZE environment variable when set to a positive integer,
/// otherwise 4096. A value of 1 selects the exact legacy row-at-a-time
/// loops (the differential-testing anchor).
int DefaultBatchSize();

/// Default live rows per intra-partition morsel: the SCX_MORSEL_SIZE
/// environment variable when set to a positive integer, otherwise 16384.
/// Every value yields bit-identical results (docs/architecture.md §15);
/// small values only add scheduling overhead.
int DefaultMorselSize();

/// Physical representation of one column of a batch. Typed reps store the
/// raw payloads contiguously; kValue is the mixed-type fallback that keeps
/// the executor's dynamic-typing semantics exact when a column's cells do
/// not all share one runtime type.
enum class ColumnRep { kInt64, kDouble, kString, kValue };

/// Indices of the batch rows that survived a filter, in row order. Kernels
/// consume a selection instead of compacting the batch.
using SelectionVector = std::vector<uint32_t>;

/// A typed column of a few thousand cells with optional null support. The
/// rep is adopted from the first appended cell and demoted to kValue on the
/// first mismatching append, so `ValueAt(i)` is always bit-identical to the
/// row cell the column was built from.
///
/// The row format cannot represent nulls, so converter-built columns are
/// always fully valid; the null mask exists for kernel-level intermediates
/// and is validated by tests (ToRows-style conversions require 0 nulls).
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(ColumnRep rep) : rep_(rep), adopted_(true) {}

  ColumnRep rep() const { return rep_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  void Reserve(size_t n);
  void Clear();

  /// Appends one cell, adopting the rep on the first append and demoting
  /// the whole column to kValue when `v`'s runtime type does not match.
  void AppendValue(const Value& v);

  /// Appends a null cell (a typed placeholder plus a validity-mask entry).
  void AppendNull();

  bool IsNull(size_t i) const {
    return i < nulls_.size() && nulls_[i] != 0;
  }
  size_t null_count() const;

  /// The cell as a Value — bit-identical to the source row cell.
  Value ValueAt(size_t i) const;

  /// Value equality of cell i against `v` (exact Value::operator==
  /// semantics: types must match, then payloads compare equal).
  bool CellEquals(size_t i, const Value& v) const;

  /// Hash of cell i, identical to ValueAt(i).Hash().
  uint64_t CellHash(size_t i) const;

  /// Appends all of `src`'s cells (or only `sel`'s, in selection order).
  /// Bulk typed copy when the reps line up; falls back to per-cell
  /// AppendValue (with its adopt/demote semantics) otherwise, so the result
  /// is always cell-for-cell identical to an AppendValue loop.
  void AppendColumn(const ColumnVector& src, const SelectionVector* sel);

  /// Typed payloads; valid only for the matching rep.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  std::vector<double>* mutable_doubles() { return &doubles_; }

 private:
  void Demote();  // rewrite the typed payload as kValue

  ColumnRep rep_ = ColumnRep::kValue;
  bool adopted_ = false;  ///< rep fixed (first append or explicit ctor)
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;
  std::vector<uint8_t> nulls_;  ///< empty = no nulls; else 1 bit per cell
};

/// A horizontal slice of a partition in columnar form. Columns are aligned
/// with the producing operator's schema positions; only the positions a
/// kernel asked for are materialized (the rest stay empty), so converting
/// costs one pass over the referenced cells only.
struct ColumnBatch {
  size_t rows = 0;
  std::vector<ColumnVector> columns;

  const ColumnVector& col(int pos) const {
    return columns[static_cast<size_t>(pos)];
  }
};

/// Converts rows[begin, end) into a batch of `num_columns` columns,
/// materializing only the `wanted` schema positions (duplicates are fine).
ColumnBatch BatchFromRows(const std::vector<Row>& rows, size_t begin,
                          size_t end, size_t num_columns,
                          const std::vector<int>& wanted);

/// Appends the batch's rows (all columns, which must all be materialized
/// and null-free) to `out` — the inverse of a full-width BatchFromRows.
void AppendBatchRows(const ColumnBatch& batch, std::vector<Row>* out);

/// Appends one output row per batch row, cell j taken from cols[j]. Used
/// by the Compute operator to fold evaluated expression columns back into
/// the row stream at the operator boundary.
void AppendRowsFromColumns(const std::vector<const ColumnVector*>& cols,
                           size_t rows, std::vector<Row>* out);

/// Gathers sel's cells of `col` into a new column (same rep, nulls kept).
ColumnVector GatherColumn(const ColumnVector& col,
                          const SelectionVector& sel);

/// Cells [begin, end) of `col` as a new dense column — a contiguous typed
/// copy (same rep, nulls kept), the morsel analogue of GatherColumn without
/// the indirection.
ColumnVector SliceColumn(const ColumnVector& col, size_t begin, size_t end);

/// Exact Value::operator<=> of cell i of `a` vs cell j of `b` as -1/0/+1
/// (cross-type orders by type index, the canonical Value ordering), with
/// typed fast paths when both columns share a non-kValue rep. The columnar
/// sort comparator.
int CompareCells(const ColumnVector& a, size_t i, const ColumnVector& b,
                 size_t j);

/// Exact Value::operator<=> of cell i of `a` vs `v` as -1/0/+1, with typed
/// fast paths when the rep matches v's runtime type. Used by the range
/// exchange to compare key cells against quantile boundary Values.
int CompareCellValue(const ColumnVector& a, size_t i, const Value& v);

/// Sum of Value::ByteWidth over the column's cells (or only `sel`'s) —
/// the executor's shuffle/spool byte accounting, computed without
/// materializing Values.
int64_t ColumnLiveBytes(const ColumnVector& col, const SelectionVector* sel);

// ---------------------------------------------------------------------------
// Batch-native operator boundaries (docs/architecture.md §14).
//
// When batch_size > 1 the executor's operators exchange BatchData instead of
// row vectors: one BatchPartition per simulated machine, each a set of
// immutable, shareable columns plus an optional selection vector. Columns
// are reference-counted so a spool cache hit or a broadcast hands consumers
// the same physical column storage instead of copying rows; a filter's
// output shares its input's columns and only narrows the selection.

/// An immutable, shareable column. Every producer finishes a column before
/// publishing it and no consumer ever mutates one in place, so sharing
/// across operators, spool readers, and worker threads is safe.
using ColumnPtr = std::shared_ptr<const ColumnVector>;

/// A borrowed, non-owning view of a batch: `rows` physical rows and one
/// column pointer per schema position (positions a caller never asks for
/// may be null). The common argument type of the vectorized kernels.
struct ColumnBatchView {
  size_t rows = 0;
  std::vector<const ColumnVector*> columns;

  const ColumnVector& col(int pos) const {
    return *columns[static_cast<size_t>(pos)];
  }
};

/// Returns the borrowed view of an owning ColumnBatch.
ColumnBatchView ViewOf(const ColumnBatch& batch);

/// One machine's slice of an operator's output in columnar form. `columns`
/// are aligned with the producing operator's schema positions and all
/// materialized. When `filtered`, only the `sel` rows (ascending) are live;
/// the physical columns may be shared with the unfiltered producer.
struct BatchPartition {
  size_t rows = 0;  ///< physical rows in every column
  std::vector<ColumnPtr> columns;
  SelectionVector sel;
  bool filtered = false;

  size_t LiveRows() const { return filtered ? sel.size() : rows; }
  const SelectionVector* Selection() const {
    return filtered ? &sel : nullptr;
  }
  ColumnBatchView View() const;
};

/// A whole operator output, split across the simulated cluster's machines —
/// the columnar analogue of PartitionedData.
struct BatchData {
  Schema schema;
  std::vector<BatchPartition> partitions;

  int64_t TotalLiveRows() const;
  int64_t TotalLiveBytes() const;  ///< Value::ByteWidth sum over live cells
};

/// Densifies a partition: gathers the selected rows of every column. A
/// partition that is not filtered is returned as-is (columns shared, no
/// copy) — the spool materialization fast path.
BatchPartition CompactPartition(const BatchPartition& part);

/// Full-width rows -> columns conversion for one partition (the bridge into
/// the batch pipeline; the caller accounts rows_converted).
BatchPartition PartitionFromRows(const std::vector<Row>& rows,
                                 size_t num_columns);

/// Appends the partition's live rows (selection order) to `out` — the
/// bridge out of the batch pipeline, used at Output and by row-only
/// operators (the caller accounts rows_converted).
void AppendPartitionRows(const BatchPartition& part, std::vector<Row>* out);

/// Splits [0, n) into batches of at most `batch_size` rows and returns the
/// number of batches (the executor's batches_evaluated accounting).
inline int64_t NumBatches(size_t n, size_t batch_size) {
  if (n == 0 || batch_size == 0) return 0;
  return static_cast<int64_t>((n + batch_size - 1) / batch_size);
}

}  // namespace scx

#endif  // SCX_EXEC_COLUMN_BATCH_H_
