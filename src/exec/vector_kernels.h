#ifndef SCX_EXEC_VECTOR_KERNELS_H_
#define SCX_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/column_batch.h"
#include "plan/expr.h"
#include "plan/expr_cse.h"

namespace scx {

/// The seed of the per-row HashRowKey chain; exposed so batch kernels can
/// start a hash accumulator identically to the row path.
inline constexpr uint64_t kRowKeySeed = 0x2545f4914f6cdd1dULL;

/// Combines column `col`'s cells [begin, end) into the per-row hash
/// accumulators `h[begin..end)` — one HashCombine link of the HashRowKey
/// chain, typed loops per rep, bit-identical to
/// HashCombine(h[i], ValueAt(i).Hash()). The range form lets morsel jobs
/// hash disjoint slices of one shared accumulator array.
void HashColumnCells(const ColumnVector& col, size_t begin, size_t end,
                     uint64_t* h);
inline void HashColumnCells(const ColumnVector& col, size_t n, uint64_t* h) {
  HashColumnCells(col, 0, n, h);
}

/// Key hash of every batch row over the `positions` columns — bit-identical
/// to HashRowKey(row, positions) on the source rows. Columns are hashed
/// whole (column-major), typed loops per rep; the per-row HashCombine chain
/// order is the positions order, exactly as the row-at-a-time path.
void HashColumns(const ColumnBatch& batch, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes);

/// BoundPredicate::Evaluate's comparison on two cells: mixed non-string
/// types compare numerically, otherwise the canonical Value ordering.
/// Used for residual join predicates evaluated per candidate pair.
bool PredicatePassCells(CompareOp op, const Value& l, const Value& r);

/// Applies `lhs op (rhs | literal)` over physical rows [begin, rows),
/// narrowing `sel`: when `first`, fills sel with all passing row indices of
/// the range; otherwise keeps only the already selected rows that also pass
/// (so a pre-seeded sel from an upstream filter is intersected, never
/// widened — `begin` is ignored, the selection is the range).
/// `rhs == nullptr` selects the literal side. Comparison semantics are
/// exactly BoundPredicate::Evaluate's: mixed int/double compares
/// numerically, otherwise the canonical Value ordering applies.
///
/// The dense (`first`) int64/double paths run a branchless blockwise
/// compare-mask loop the compiler auto-vectorizes (CI guards this — see
/// tools/check_vectorization.py) followed by a branchless index compaction;
/// the selective paths compact in place without branching on the outcome.
void SelectByPredicate(const ColumnVector& lhs, const ColumnVector* rhs,
                       const Value& literal, CompareOp op, size_t rows,
                       bool first, SelectionVector* sel, size_t begin = 0);

/// Applies `pred` over the batch, intersecting into `sel`. Positions are
/// pre-resolved by the caller (rhs_pos < 0 means the literal side). A thin
/// wrapper over SelectByPredicate.
void ApplyPredicate(const ColumnBatch& batch, const BoundPredicate& pred,
                    int lhs_pos, int rhs_pos, bool first,
                    SelectionVector* sel);

/// `v` splatted into an n-cell column (the kLiteral step kernel).
ColumnVector SplatColumn(const Value& v, size_t n);

/// One binary expression step over whole columns, reproducing
/// ScalarExpr::Evaluate's dynamic semantics bit-for-bit: kDiv always yields
/// doubles with the divide-by-zero-is-zero rule; +,-,* stay int64 only when
/// both cells are int64; mixed-rep columns fall back to cell-at-a-time
/// Values.
void EvalBinaryColumns(ScalarExpr::BinOp op, const ColumnVector& l,
                       const ColumnVector& r, size_t n, ColumnVector* out);

/// Evaluated shared-slot schedule: one column per step. kColumn steps
/// borrow the input batch's column; computed steps own their storage in
/// `computed`. Use `cols[step]` to read any step's output.
struct EvaluatedSchedule {
  std::vector<ColumnVector> computed;
  std::vector<const ColumnVector*> cols;
};

/// Runs `sched` over the batch: each step evaluated once, in order, with
/// type-specialized binary kernels reproducing ScalarExpr::Evaluate's
/// dynamic semantics bit-for-bit. `step_pos[i]` is the schema position of a
/// kColumn step, -1 otherwise.
void EvalExprSchedule(const ExprSchedule& sched, const ColumnBatch& batch,
                      const std::vector<int>& step_pos,
                      EvaluatedSchedule* out);

}  // namespace scx

#endif  // SCX_EXEC_VECTOR_KERNELS_H_
