#ifndef SCX_EXEC_VECTOR_KERNELS_H_
#define SCX_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/column_batch.h"
#include "plan/expr.h"
#include "plan/expr_cse.h"

namespace scx {

/// Key hash of every batch row over the `positions` columns — bit-identical
/// to HashRowKey(row, positions) on the source rows. Columns are hashed
/// whole (column-major), typed loops per rep; the per-row HashCombine chain
/// order is the positions order, exactly as the row-at-a-time path.
void HashColumns(const ColumnBatch& batch, const std::vector<int>& positions,
                 std::vector<uint64_t>* hashes);

/// Applies `pred` over the batch, intersecting into `sel`: when `first`,
/// fills sel with all passing row indices; otherwise keeps only the already
/// selected rows that also pass. Positions are pre-resolved by the caller
/// (rhs_pos < 0 means the literal side). Comparison semantics are exactly
/// BoundPredicate::Evaluate's: mixed int/double compares numerically,
/// otherwise the canonical Value ordering applies.
void ApplyPredicate(const ColumnBatch& batch, const BoundPredicate& pred,
                    int lhs_pos, int rhs_pos, bool first,
                    SelectionVector* sel);

/// Evaluated shared-slot schedule: one column per step. kColumn steps
/// borrow the input batch's column; computed steps own their storage in
/// `computed`. Use `cols[step]` to read any step's output.
struct EvaluatedSchedule {
  std::vector<ColumnVector> computed;
  std::vector<const ColumnVector*> cols;
};

/// Runs `sched` over the batch: each step evaluated once, in order, with
/// type-specialized binary kernels reproducing ScalarExpr::Evaluate's
/// dynamic semantics bit-for-bit (kDiv always yields doubles with the
/// divide-by-zero-is-zero rule; +,-,* stay int64 only when both cells are
/// int64). `step_pos[i]` is the schema position of a kColumn step, -1
/// otherwise.
void EvalExprSchedule(const ExprSchedule& sched, const ColumnBatch& batch,
                      const std::vector<int>& step_pos,
                      EvaluatedSchedule* out);

}  // namespace scx

#endif  // SCX_EXEC_VECTOR_KERNELS_H_
