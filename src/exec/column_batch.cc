#include "exec/column_batch.h"

#include <cstdio>
#include <cstdlib>

#include "common/hash.h"

namespace scx {

int DefaultBatchSize() {
  if (const char* env = std::getenv("SCX_BATCH_SIZE")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 4096;
}

int DefaultMorselSize() {
  if (const char* env = std::getenv("SCX_MORSEL_SIZE")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 16384;
}

namespace {

ColumnRep RepOf(const Value& v) {
  if (v.is_int()) return ColumnRep::kInt64;
  if (v.is_double()) return ColumnRep::kDouble;
  return ColumnRep::kString;
}

}  // namespace

size_t ColumnVector::size() const {
  switch (rep_) {
    case ColumnRep::kInt64:
      return ints_.size();
    case ColumnRep::kDouble:
      return doubles_.size();
    case ColumnRep::kString:
      return strings_.size();
    case ColumnRep::kValue:
      return values_.size();
  }
  return 0;
}

void ColumnVector::Reserve(size_t n) {
  switch (rep_) {
    case ColumnRep::kInt64:
      ints_.reserve(n);
      break;
    case ColumnRep::kDouble:
      doubles_.reserve(n);
      break;
    case ColumnRep::kString:
      strings_.reserve(n);
      break;
    case ColumnRep::kValue:
      values_.reserve(n);
      break;
  }
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  values_.clear();
  nulls_.clear();
}

void ColumnVector::Demote() {
  std::vector<Value> vals;
  vals.reserve(size());
  for (size_t i = 0; i < size(); ++i) vals.push_back(ValueAt(i));
  values_ = std::move(vals);
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  rep_ = ColumnRep::kValue;
}

void ColumnVector::AppendValue(const Value& v) {
  if (!adopted_) {
    rep_ = RepOf(v);
    adopted_ = true;
  }
  switch (rep_) {
    case ColumnRep::kInt64:
      if (v.is_int()) {
        ints_.push_back(v.as_int());
      } else {
        Demote();
        values_.push_back(v);
      }
      break;
    case ColumnRep::kDouble:
      if (v.is_double()) {
        doubles_.push_back(v.as_double());
      } else {
        Demote();
        values_.push_back(v);
      }
      break;
    case ColumnRep::kString:
      if (v.is_string()) {
        strings_.push_back(v.as_string());
      } else {
        Demote();
        values_.push_back(v);
      }
      break;
    case ColumnRep::kValue:
      values_.push_back(v);
      break;
  }
  if (!nulls_.empty()) nulls_.push_back(0);
}

void ColumnVector::AppendNull() {
  if (nulls_.empty()) nulls_.assign(size(), 0);
  switch (rep_) {
    case ColumnRep::kInt64:
      ints_.push_back(0);
      break;
    case ColumnRep::kDouble:
      doubles_.push_back(0.0);
      break;
    case ColumnRep::kString:
      strings_.emplace_back();
      break;
    case ColumnRep::kValue:
      values_.emplace_back();
      break;
  }
  adopted_ = true;
  nulls_.push_back(1);
}

size_t ColumnVector::null_count() const {
  size_t n = 0;
  for (uint8_t b : nulls_) n += b;
  return n;
}

Value ColumnVector::ValueAt(size_t i) const {
  switch (rep_) {
    case ColumnRep::kInt64:
      return Value::Int(ints_[i]);
    case ColumnRep::kDouble:
      return Value::Real(doubles_[i]);
    case ColumnRep::kString:
      return Value::Str(strings_[i]);
    case ColumnRep::kValue:
      return values_[i];
  }
  return Value::Int(0);
}

bool ColumnVector::CellEquals(size_t i, const Value& v) const {
  switch (rep_) {
    case ColumnRep::kInt64:
      return v.is_int() && v.as_int() == ints_[i];
    case ColumnRep::kDouble:
      return v.is_double() && v.as_double() == doubles_[i];
    case ColumnRep::kString:
      return v.is_string() && v.as_string() == strings_[i];
    case ColumnRep::kValue:
      return values_[i] == v;
  }
  return false;
}

uint64_t ColumnVector::CellHash(size_t i) const {
  switch (rep_) {
    case ColumnRep::kInt64:
      return Mix64(static_cast<uint64_t>(ints_[i]));
    case ColumnRep::kDouble: {
      double d = doubles_[i];
      if (d == 0.0) d = 0.0;  // normalize -0.0, mirroring Value::Hash
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x5555555555555555ULL);
    }
    case ColumnRep::kString:
      return Fnv1a64(strings_[i]);
    case ColumnRep::kValue:
      return values_[i].Hash();
  }
  return 0;
}

ColumnBatch BatchFromRows(const std::vector<Row>& rows, size_t begin,
                          size_t end, size_t num_columns,
                          const std::vector<int>& wanted) {
  ColumnBatch batch;
  batch.rows = end - begin;
  batch.columns.resize(num_columns);
  for (int pos : wanted) {
    ColumnVector& col = batch.columns[static_cast<size_t>(pos)];
    if (!col.empty()) continue;  // duplicate request
    col.Reserve(batch.rows);
    for (size_t r = begin; r < end; ++r) {
      col.AppendValue(rows[r][static_cast<size_t>(pos)]);
    }
  }
  return batch;
}

void AppendBatchRows(const ColumnBatch& batch, std::vector<Row>* out) {
  out->reserve(out->size() + batch.rows);
  for (size_t i = 0; i < batch.rows; ++i) {
    Row row;
    row.reserve(batch.columns.size());
    for (const ColumnVector& col : batch.columns) {
      if (col.IsNull(i)) {
        std::fprintf(stderr,
                     "scx: fatal: null cell in row conversion (rows cannot "
                     "represent nulls)\n");
        std::abort();
      }
      row.push_back(col.ValueAt(i));
    }
    out->push_back(std::move(row));
  }
}

void AppendRowsFromColumns(const std::vector<const ColumnVector*>& cols,
                           size_t rows, std::vector<Row>* out) {
  out->reserve(out->size() + rows);
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.reserve(cols.size());
    for (const ColumnVector* col : cols) row.push_back(col->ValueAt(i));
    out->push_back(std::move(row));
  }
}

void ColumnVector::AppendColumn(const ColumnVector& src,
                                const SelectionVector* sel) {
  const size_t n = sel != nullptr ? sel->size() : src.size();
  if (n == 0) return;
  // Per-cell fallback keeps adopt/demote and null semantics exact whenever
  // a bulk copy is not obviously equivalent.
  const bool bulk = src.nulls_.empty() && nulls_.empty() &&
                    (!adopted_ || rep_ == src.rep_);
  if (!bulk) {
    for (size_t k = 0; k < n; ++k) {
      size_t i = sel != nullptr ? (*sel)[k] : k;
      if (src.IsNull(i)) {
        AppendNull();
      } else {
        AppendValue(src.ValueAt(i));
      }
    }
    return;
  }
  if (!adopted_) {
    rep_ = src.rep_;
    adopted_ = true;
  }
  auto copy = [&](auto& dst, const auto& from) {
    if (sel == nullptr) {
      dst.insert(dst.end(), from.begin(), from.end());
      return;
    }
    dst.reserve(dst.size() + n);
    for (uint32_t i : *sel) dst.push_back(from[i]);
  };
  switch (rep_) {
    case ColumnRep::kInt64:
      copy(ints_, src.ints_);
      break;
    case ColumnRep::kDouble:
      copy(doubles_, src.doubles_);
      break;
    case ColumnRep::kString:
      copy(strings_, src.strings_);
      break;
    case ColumnRep::kValue:
      copy(values_, src.values_);
      break;
  }
}

ColumnVector GatherColumn(const ColumnVector& col,
                          const SelectionVector& sel) {
  ColumnVector out(col.rep());
  out.Reserve(sel.size());
  out.AppendColumn(col, &sel);
  return out;
}

ColumnVector SliceColumn(const ColumnVector& col, size_t begin, size_t end) {
  ColumnVector out(col.rep());
  const size_t n = end - begin;
  out.Reserve(n);
  if (col.null_count() > 0) {
    for (size_t i = begin; i < end; ++i) {
      if (col.IsNull(i)) {
        out.AppendNull();
      } else {
        out.AppendValue(col.ValueAt(i));
      }
    }
    return out;
  }
  switch (col.rep()) {
    case ColumnRep::kInt64:
      out.mutable_ints()->assign(col.ints().begin() + begin,
                                 col.ints().begin() + end);
      break;
    case ColumnRep::kDouble:
      out.mutable_doubles()->assign(col.doubles().begin() + begin,
                                    col.doubles().begin() + end);
      break;
    default:
      for (size_t i = begin; i < end; ++i) out.AppendValue(col.ValueAt(i));
      break;
  }
  return out;
}

int CompareCells(const ColumnVector& a, size_t i, const ColumnVector& b,
                 size_t j) {
  if (a.rep() == b.rep()) {
    switch (a.rep()) {
      case ColumnRep::kInt64: {
        int64_t x = a.ints()[i], y = b.ints()[j];
        return (x > y) - (x < y);
      }
      case ColumnRep::kDouble: {
        double x = a.doubles()[i], y = b.doubles()[j];
        return (x > y) - (x < y);
      }
      case ColumnRep::kString: {
        int c = a.strings()[i].compare(b.strings()[j]);
        return (c > 0) - (c < 0);
      }
      case ColumnRep::kValue: {
        auto c = a.values()[i] <=> b.values()[j];
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
    }
  }
  auto c = a.ValueAt(i) <=> b.ValueAt(j);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

int CompareCellValue(const ColumnVector& a, size_t i, const Value& v) {
  switch (a.rep()) {
    case ColumnRep::kInt64:
      if (v.is_int()) {
        int64_t x = a.ints()[i], y = v.as_int();
        return (x > y) - (x < y);
      }
      break;
    case ColumnRep::kDouble:
      if (v.is_double()) {
        double x = a.doubles()[i], y = v.as_double();
        return (x > y) - (x < y);
      }
      break;
    case ColumnRep::kString:
      if (v.is_string()) {
        int c = a.strings()[i].compare(v.as_string());
        return (c > 0) - (c < 0);
      }
      break;
    case ColumnRep::kValue:
      break;
  }
  auto c = a.ValueAt(i) <=> v;
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

int64_t ColumnLiveBytes(const ColumnVector& col, const SelectionVector* sel) {
  const size_t n = sel != nullptr ? sel->size() : col.size();
  switch (col.rep()) {
    case ColumnRep::kInt64:
    case ColumnRep::kDouble:
      return static_cast<int64_t>(n) * 8;
    case ColumnRep::kString: {
      int64_t total = 0;
      if (sel != nullptr) {
        for (uint32_t i : *sel) {
          total += static_cast<int64_t>(col.strings()[i].size()) + 4;
        }
      } else {
        for (const std::string& s : col.strings()) {
          total += static_cast<int64_t>(s.size()) + 4;
        }
      }
      return total;
    }
    case ColumnRep::kValue: {
      int64_t total = 0;
      if (sel != nullptr) {
        for (uint32_t i : *sel) total += col.values()[i].ByteWidth();
      } else {
        for (const Value& v : col.values()) total += v.ByteWidth();
      }
      return total;
    }
  }
  return 0;
}

ColumnBatchView ViewOf(const ColumnBatch& batch) {
  ColumnBatchView view;
  view.rows = batch.rows;
  view.columns.reserve(batch.columns.size());
  for (const ColumnVector& col : batch.columns) view.columns.push_back(&col);
  return view;
}

ColumnBatchView BatchPartition::View() const {
  ColumnBatchView view;
  view.rows = rows;
  view.columns.reserve(columns.size());
  for (const ColumnPtr& col : columns) view.columns.push_back(col.get());
  return view;
}

int64_t BatchData::TotalLiveRows() const {
  int64_t n = 0;
  for (const BatchPartition& p : partitions) {
    n += static_cast<int64_t>(p.LiveRows());
  }
  return n;
}

int64_t BatchData::TotalLiveBytes() const {
  int64_t n = 0;
  for (const BatchPartition& p : partitions) {
    for (const ColumnPtr& col : p.columns) {
      if (col != nullptr) n += ColumnLiveBytes(*col, p.Selection());
    }
  }
  return n;
}

BatchPartition CompactPartition(const BatchPartition& part) {
  if (!part.filtered) return part;
  BatchPartition out;
  out.rows = part.sel.size();
  out.columns.reserve(part.columns.size());
  for (const ColumnPtr& col : part.columns) {
    if (col == nullptr) {
      out.columns.push_back(nullptr);
      continue;
    }
    out.columns.push_back(
        std::make_shared<ColumnVector>(GatherColumn(*col, part.sel)));
  }
  return out;
}

BatchPartition PartitionFromRows(const std::vector<Row>& rows,
                                 size_t num_columns) {
  BatchPartition out;
  out.rows = rows.size();
  out.columns.reserve(num_columns);
  for (size_t pos = 0; pos < num_columns; ++pos) {
    auto col = std::make_shared<ColumnVector>();
    col->Reserve(rows.size());
    for (const Row& r : rows) col->AppendValue(r[pos]);
    out.columns.push_back(std::move(col));
  }
  return out;
}

void AppendPartitionRows(const BatchPartition& part, std::vector<Row>* out) {
  const size_t n = part.LiveRows();
  out->reserve(out->size() + n);
  for (size_t k = 0; k < n; ++k) {
    size_t i = part.filtered ? part.sel[k] : k;
    Row row;
    row.reserve(part.columns.size());
    for (const ColumnPtr& col : part.columns) {
      if (col->IsNull(i)) {
        std::fprintf(stderr,
                     "scx: fatal: null cell in row conversion (rows cannot "
                     "represent nulls)\n");
        std::abort();
      }
      row.push_back(col->ValueAt(i));
    }
    out->push_back(std::move(row));
  }
}

}  // namespace scx
