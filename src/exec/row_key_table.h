#ifndef SCX_EXEC_ROW_KEY_TABLE_H_
#define SCX_EXEC_ROW_KEY_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/value.h"

namespace scx {

/// Open-addressed hash table mapping a row key — the values of a fixed set
/// of column positions — to a dense id in insertion order. This is the
/// executor's aggregation/join building block, replacing the
/// `std::map<std::vector<Value>, ...>` tree maps: lookups cost one 64-bit
/// key hash (HashRowKey, the same Mix64/HashCombine chain the fingerprint
/// and shuffle paths use) plus a linear probe, and a full key comparison
/// only on a matching hash. Keys are materialized once, on insertion —
/// probes compare the stored key against the row's key positions in place.
///
/// Capacity is a power of two kept at most half full; rehashing reuses the
/// stored hashes, so keys are never re-hashed. Pre-size with the expected
/// key count (e.g. the input cardinality) to avoid rehashes entirely.
class RowKeyTable {
 public:
  static constexpr size_t kNotFound = ~size_t{0};

  explicit RowKeyTable(size_t expected_keys = 0) {
    size_t cap = kMinSlots;
    while (cap < 2 * expected_keys) cap *= 2;
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    keys_.reserve(expected_keys);
    hashes_.reserve(expected_keys);
  }

  size_t size() const { return keys_.size(); }

  /// The id-th inserted key (ids are dense, in insertion order).
  const Row& KeyAt(size_t id) const { return keys_[id]; }

  /// Dense id of the key `row[positions[0]], row[positions[1]], ...`,
  /// inserting it when absent. Returns {id, inserted}. An empty position
  /// list is the grand-total case: every row maps to one empty key.
  std::pair<size_t, bool> FindOrInsert(const Row& row,
                                       const std::vector<int>& positions) {
    uint64_t h = HashRowKey(row, positions);
    size_t i = h & mask_;
    while (slots_[i] != kEmptySlot) {
      size_t id = slots_[i];
      if (hashes_[id] == h && KeyEquals(id, row, positions)) {
        return {id, false};
      }
      i = (i + 1) & mask_;
    }
    Row key;
    key.reserve(positions.size());
    for (int p : positions) key.push_back(row[static_cast<size_t>(p)]);
    return {InsertAt(i, h, std::move(key)), true};
  }

  /// FindOrInsert with a caller-supplied full key and its hash (tests use
  /// this to force hash collisions; generic callers can key on anything
  /// they can hash consistently).
  std::pair<size_t, bool> FindOrInsertKey(Row key, uint64_t hash) {
    size_t i = hash & mask_;
    while (slots_[i] != kEmptySlot) {
      size_t id = slots_[i];
      if (hashes_[id] == hash && keys_[id] == key) return {id, false};
      i = (i + 1) & mask_;
    }
    return {InsertAt(i, hash, std::move(key)), true};
  }

  /// Batch-path FindOrInsert: the caller supplies the precomputed key hash
  /// (from HashColumns over whole key columns), `eq(stored_key)` comparing
  /// a stored key against the probe cells, and `make_key()` materializing
  /// the key Row only when it is actually inserted. The probe sequence and
  /// the dense-id assignment are identical to FindOrInsert's, so batch and
  /// row paths build bit-identical tables.
  template <typename EqFn, typename MakeKeyFn>
  std::pair<size_t, bool> FindOrInsertHashed(uint64_t hash, EqFn eq,
                                             MakeKeyFn make_key) {
    size_t i = hash & mask_;
    while (slots_[i] != kEmptySlot) {
      size_t id = slots_[i];
      if (hashes_[id] == hash && eq(keys_[id])) return {id, false};
      i = (i + 1) & mask_;
    }
    return {InsertAt(i, hash, make_key()), true};
  }

  /// Batch-path Find: precomputed hash plus a stored-key comparator.
  template <typename EqFn>
  size_t FindHashed(uint64_t hash, EqFn eq) const {
    size_t i = hash & mask_;
    while (slots_[i] != kEmptySlot) {
      size_t id = slots_[i];
      if (hashes_[id] == hash && eq(keys_[id])) return id;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  /// Dense id of the probe key, or kNotFound.
  size_t Find(const Row& row, const std::vector<int>& positions) const {
    uint64_t h = HashRowKey(row, positions);
    size_t i = h & mask_;
    while (slots_[i] != kEmptySlot) {
      size_t id = slots_[i];
      if (hashes_[id] == h && KeyEquals(id, row, positions)) return id;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

 private:
  static constexpr size_t kEmptySlot = ~size_t{0};
  static constexpr size_t kMinSlots = 16;

  bool KeyEquals(size_t id, const Row& row,
                 const std::vector<int>& positions) const {
    const Row& key = keys_[id];
    for (size_t j = 0; j < positions.size(); ++j) {
      if (!(key[j] == row[static_cast<size_t>(positions[j])])) return false;
    }
    return true;
  }

  size_t InsertAt(size_t slot, uint64_t hash, Row key) {
    size_t id = keys_.size();
    keys_.push_back(std::move(key));
    hashes_.push_back(hash);
    slots_[slot] = id;
    if (2 * keys_.size() > slots_.size()) Grow();
    return id;
  }

  void Grow() {
    size_t cap = slots_.size() * 2;
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    for (size_t id = 0; id < keys_.size(); ++id) {
      size_t i = hashes_[id] & mask_;
      while (slots_[i] != kEmptySlot) i = (i + 1) & mask_;
      slots_[i] = id;
    }
  }

  std::vector<size_t> slots_;  ///< dense id per slot, or kEmptySlot
  size_t mask_ = 0;
  std::vector<Row> keys_;        ///< indexed by dense id
  std::vector<uint64_t> hashes_; ///< key hash per dense id
};

}  // namespace scx

#endif  // SCX_EXEC_ROW_KEY_TABLE_H_
