#include "script/ast.h"

namespace scx {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "Sum";
    case AggFn::kCount:
      return "Count";
    case AggFn::kMin:
      return "Min";
    case AggFn::kMax:
      return "Max";
    case AggFn::kAvg:
      return "Avg";
  }
  return "?";
}

std::string AstPredicate::ToString() const {
  std::string out =
      lhs_scalar != nullptr ? lhs_scalar->ToString() : lhs.ToString();
  out += CompareOpName(op);
  if (rhs_scalar != nullptr) {
    out += rhs_scalar->ToString();
  } else {
    out += rhs_is_column ? rhs_column.ToString() : rhs_literal.ToString();
  }
  return out;
}

std::string AstScalar::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column.ToString();
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + std::string(1, op) + rhs->ToString() +
             ")";
  }
  return "?";
}

std::string AstSelectItem::ToString() const {
  std::string out;
  std::string arg = scalar != nullptr ? scalar->ToString()
                                      : column.ToString();
  if (is_aggregate) {
    out = AggFnName(fn);
    out += "(";
    out += count_star ? "*" : arg;
    out += ")";
  } else {
    out = arg;
  }
  if (!alias.empty()) {
    out += " AS ";
    out += alias;
  }
  return out;
}

}  // namespace scx
