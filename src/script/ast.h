#ifndef SCX_SCRIPT_AST_H_
#define SCX_SCRIPT_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace scx {

/// Reference to a column, optionally qualified with a relation name: `R1.B`.
struct AstColumnRef {
  std::string qualifier;  ///< empty when unqualified
  std::string name;

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Comparison operators usable in WHERE clauses.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

struct AstScalar;
using AstScalarPtr = std::shared_ptr<AstScalar>;

/// One atomic WHERE/HAVING predicate: `<scalar> op <scalar|col|literal>`.
/// Conjunctions are represented as a list of these (the dialect supports
/// AND only, which covers all scripts in the paper plus simple filters).
/// The bare-column/literal fields are filled for simple sides; composite
/// sides set the corresponding `*_scalar` (the binder desugars those
/// through a Compute operator).
struct AstPredicate {
  AstColumnRef lhs;
  AstScalarPtr lhs_scalar;  ///< non-null when lhs is a composite expression
  CompareOp op = CompareOp::kEq;
  bool rhs_is_column = false;
  AstColumnRef rhs_column;
  AstScalarPtr rhs_scalar;  ///< non-null when rhs is a composite expression
  Value rhs_literal;

  std::string ToString() const;
};

/// An unbound scalar expression: column refs, literals, and + - * /.
struct AstScalar {
  enum class Kind { kColumn, kLiteral, kBinary } kind = Kind::kColumn;
  AstColumnRef column;
  Value literal;
  char op = '+';
  std::shared_ptr<AstScalar> lhs;
  std::shared_ptr<AstScalar> rhs;

  bool IsBareColumn() const { return kind == Kind::kColumn; }
  std::string ToString() const;
};

using AstScalarPtr = std::shared_ptr<AstScalar>;

/// Aggregate functions supported in SELECT items.
enum class AggFn { kSum, kCount, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One SELECT-list item: a plain column reference, a scalar expression
/// (`A+B AS X`), or an aggregate call `Fn(expr)` / `COUNT(*)`, optionally
/// aliased with AS.
struct AstSelectItem {
  bool is_aggregate = false;
  AstColumnRef column;  ///< plain column, or the bare-column aggregate arg
  /// Non-null when the item (or the aggregate argument) is a composite
  /// scalar expression rather than a bare column.
  AstScalarPtr scalar;
  AggFn fn = AggFn::kSum;
  bool count_star = false;  ///< COUNT(*)
  std::string alias;        ///< empty when no AS clause

  std::string ToString() const;
};

/// `EXTRACT cols FROM "path" USING Extractor`.
struct AstExtract {
  std::vector<std::string> columns;
  std::string path;
  std::string extractor;
};

/// `SELECT [DISTINCT] items FROM rel[, rel] [WHERE preds]
///  [GROUP BY cols [HAVING preds]] [ORDER BY cols]`.
struct AstSelect {
  bool distinct = false;
  std::vector<AstSelectItem> items;
  std::vector<std::string> sources;  ///< referenced result names (1 or 2)
  std::vector<AstPredicate> where;
  std::vector<AstColumnRef> group_by;
  std::vector<AstPredicate> having;
  std::vector<AstColumnRef> order_by;
};

/// `UNION ALL a,b[,c...]`: positional concatenation of named results with
/// compatible schemas.
struct AstUnion {
  std::vector<std::string> sources;
};

/// A named statement body: an extract, a select, or a union.
struct AstQuery {
  enum class Kind { kExtract, kSelect, kUnion } kind = Kind::kSelect;
  AstExtract extract;
  AstSelect select;
  AstUnion union_all;
};

/// One script statement.
struct AstStatement {
  enum class Kind { kAssign, kOutput } kind = Kind::kAssign;
  // kAssign:
  std::string target;  ///< result name being defined
  AstQuery query;
  // kOutput:
  std::string output_rel;
  std::string output_path;
};

/// A whole script: an ordered list of statements.
struct AstScript {
  std::vector<AstStatement> statements;
};

}  // namespace scx

#endif  // SCX_SCRIPT_AST_H_
