#ifndef SCX_SCRIPT_LEXER_H_
#define SCX_SCRIPT_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "script/token.h"

namespace scx {

/// Tokenizes a full script. `//`-to-end-of-line comments are skipped.
/// The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace scx

#endif  // SCX_SCRIPT_LEXER_H_
