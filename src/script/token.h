#ifndef SCX_SCRIPT_TOKEN_H_
#define SCX_SCRIPT_TOKEN_H_

#include <string>

namespace scx {

/// Lexical token kinds of the SCOPE-dialect script language.
enum class TokenKind {
  kEnd,
  kIdent,    ///< bare identifier (also keywords; keyword check is by text)
  kInt,      ///< integer literal
  kReal,     ///< floating literal
  kString,   ///< double-quoted string literal (value has quotes stripped)
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kLParen,
  kRParen,
  kEq,       ///< '=' or '=='
  kNe,       ///< '!=' or '<>'
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One lexical token with its source location (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< identifier text / literal spelling (unquoted)
  int line = 1;
  int column = 1;

  /// Case-insensitive keyword match for identifier tokens.
  bool IsKeyword(const char* kw) const;
};

/// Returns a printable name for a token kind ("identifier", "','", ...).
const char* TokenKindName(TokenKind kind);

}  // namespace scx

#endif  // SCX_SCRIPT_TOKEN_H_
