#include "script/lexer.h"

#include <cctype>

namespace scx {

namespace {

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of script";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer literal";
    case TokenKind::kReal:
      return "numeric literal";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "token";
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < n) {
    char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') advance(1);
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        advance(1);
      }
      tok.kind = TokenKind::kIdent;
      tok.text = source.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      if (i < n && source[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_real = true;
        advance(1);
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      tok.kind = is_real ? TokenKind::kReal : TokenKind::kInt;
      tok.text = source.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      advance(1);
      size_t start = i;
      while (i < n && source[i] != '"' && source[i] != '\n') advance(1);
      if (i >= n || source[i] != '"') {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok.line));
      }
      tok.kind = TokenKind::kString;
      tok.text = source.substr(start, i - start);
      advance(1);  // closing quote
      tokens.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && source[i + 1] == b;
    };

    if (two('=', '=')) {
      tok.kind = TokenKind::kEq;
      advance(2);
    } else if (two('!', '=') || two('<', '>')) {
      tok.kind = TokenKind::kNe;
      advance(2);
    } else if (two('<', '=')) {
      tok.kind = TokenKind::kLe;
      advance(2);
    } else if (two('>', '=')) {
      tok.kind = TokenKind::kGe;
      advance(2);
    } else {
      switch (c) {
        case ',':
          tok.kind = TokenKind::kComma;
          break;
        case ';':
          tok.kind = TokenKind::kSemicolon;
          break;
        case '.':
          tok.kind = TokenKind::kDot;
          break;
        case '*':
          tok.kind = TokenKind::kStar;
          break;
        case '+':
          tok.kind = TokenKind::kPlus;
          break;
        case '-':
          tok.kind = TokenKind::kMinus;
          break;
        case '/':
          tok.kind = TokenKind::kSlash;
          break;
        case '(':
          tok.kind = TokenKind::kLParen;
          break;
        case ')':
          tok.kind = TokenKind::kRParen;
          break;
        case '=':
          tok.kind = TokenKind::kEq;
          break;
        case '<':
          tok.kind = TokenKind::kLt;
          break;
        case '>':
          tok.kind = TokenKind::kGt;
          break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at line " +
                                    std::to_string(line) + ", column " +
                                    std::to_string(column));
      }
      advance(1);
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace scx
