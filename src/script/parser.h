#ifndef SCX_SCRIPT_PARSER_H_
#define SCX_SCRIPT_PARSER_H_

#include <string>

#include "common/status.h"
#include "script/ast.h"

namespace scx {

/// Parses a SCOPE-dialect script into an AST. The grammar covers the paper's
/// scripts:
///
///   stmt    := ident '=' (extract | select) ';'
///            | 'OUTPUT' ident 'TO' string ';'
///   extract := 'EXTRACT' ident (',' ident)* 'FROM' string 'USING' ident
///   select  := 'SELECT' item (',' item)* 'FROM' ident (',' ident)?
///              ('WHERE' pred ('AND' pred)*)?
///              ('GROUP' 'BY' colref (',' colref)*)?
///   item    := aggfn '(' (colref | '*') ')' ('AS' ident)?
///            | colref ('AS' ident)?
///   pred    := scalar cmpop scalar
///   scalar  := term (('+'|'-') term)*
///   term    := factor (('*'|'/') factor)*
///   factor  := number | string | colref | '(' scalar ')'
///   colref  := ident ('.' ident)?
Result<AstScript> ParseScript(const std::string& source);

}  // namespace scx

#endif  // SCX_SCRIPT_PARSER_H_
