#ifndef SCX_SCRIPT_PARSER_H_
#define SCX_SCRIPT_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "script/ast.h"

namespace scx {

/// Parses a SCOPE-dialect script into an AST. The grammar covers the paper's
/// scripts:
///
///   stmt    := ident '=' (extract | select) ';'
///            | 'OUTPUT' ident 'TO' string ';'
///   extract := 'EXTRACT' ident (',' ident)* 'FROM' string 'USING' ident
///   select  := 'SELECT' item (',' item)* 'FROM' ident (',' ident)?
///              ('WHERE' pred ('AND' pred)*)?
///              ('GROUP' 'BY' colref (',' colref)*)?
///   item    := aggfn '(' (colref | '*') ')' ('AS' ident)?
///            | colref ('AS' ident)?
///   pred    := scalar cmpop scalar
///   scalar  := term (('+'|'-') term)*
///   term    := factor (('*'|'/') factor)*
///   factor  := number | string | colref | '(' scalar ')'
///   colref  := ident ('.' ident)?
Result<AstScript> ParseScript(const std::string& source);

/// Parses a batch of independently authored scripts (one AST each). Scripts
/// are completely separate compilation units — names do not resolve across
/// them — so a parse error in script i is reported as "script <i>: ...".
Result<std::vector<AstScript>> ParseScriptBatch(
    const std::vector<std::string>& sources);

}  // namespace scx

#endif  // SCX_SCRIPT_PARSER_H_
