#include "script/parser.h"

#include <cctype>

#include "script/lexer.h"

namespace scx {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstScript> Parse() {
    AstScript script;
    while (!AtEnd()) {
      SCX_ASSIGN_OR_RETURN(AstStatement stmt, ParseStatement());
      script.statements.push_back(std::move(stmt));
    }
    if (script.statements.empty()) {
      return Status::ParseError("empty script");
    }
    return script;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Token Next() {
    Token t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              " (got " + TokenKindName(t.kind) +
                              (t.text.empty() ? "" : " '" + t.text + "'") +
                              ")");
  }

  Result<Token> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return ErrorHere(std::string("expected ") + TokenKindName(kind));
    }
    return Next();
  }

  Result<Token> ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return ErrorHere(std::string("expected keyword ") + kw);
    }
    return Next();
  }

  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }

  Result<AstStatement> ParseStatement() {
    AstStatement stmt;
    if (Peek().IsKeyword("OUTPUT")) {
      Next();
      stmt.kind = AstStatement::Kind::kOutput;
      SCX_ASSIGN_OR_RETURN(Token rel, Expect(TokenKind::kIdent));
      stmt.output_rel = rel.text;
      SCX_ASSIGN_OR_RETURN(Token to, Expect(TokenKind::kIdent));
      if (!to.IsKeyword("TO")) {
        return ErrorHere("expected TO in OUTPUT statement");
      }
      SCX_ASSIGN_OR_RETURN(Token path, Expect(TokenKind::kString));
      stmt.output_path = path.text;
      SCX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
      return stmt;
    }

    stmt.kind = AstStatement::Kind::kAssign;
    SCX_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent));
    stmt.target = name.text;
    SCX_RETURN_IF_ERROR(Expect(TokenKind::kEq).status());
    if (Peek().IsKeyword("EXTRACT")) {
      SCX_ASSIGN_OR_RETURN(stmt.query.extract, ParseExtract());
      stmt.query.kind = AstQuery::Kind::kExtract;
    } else if (Peek().IsKeyword("SELECT")) {
      SCX_ASSIGN_OR_RETURN(stmt.query.select, ParseSelect());
      stmt.query.kind = AstQuery::Kind::kSelect;
    } else if (Peek().IsKeyword("UNION")) {
      Next();
      SCX_RETURN_IF_ERROR(ExpectKeyword("ALL").status());
      stmt.query.kind = AstQuery::Kind::kUnion;
      do {
        SCX_ASSIGN_OR_RETURN(Token src, Expect(TokenKind::kIdent));
        stmt.query.union_all.sources.push_back(src.text);
      } while (Consume(TokenKind::kComma));
      if (stmt.query.union_all.sources.size() < 2) {
        return Status::ParseError("UNION ALL needs at least two sources");
      }
    } else {
      return ErrorHere("expected EXTRACT, SELECT, or UNION ALL");
    }
    SCX_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon).status());
    return stmt;
  }

  Result<AstExtract> ParseExtract() {
    SCX_RETURN_IF_ERROR(ExpectKeyword("EXTRACT").status());
    AstExtract extract;
    do {
      SCX_ASSIGN_OR_RETURN(Token col, Expect(TokenKind::kIdent));
      extract.columns.push_back(col.text);
    } while (Consume(TokenKind::kComma));
    SCX_RETURN_IF_ERROR(ExpectKeyword("FROM").status());
    SCX_ASSIGN_OR_RETURN(Token path, Expect(TokenKind::kString));
    extract.path = path.text;
    SCX_RETURN_IF_ERROR(ExpectKeyword("USING").status());
    SCX_ASSIGN_OR_RETURN(Token ext, Expect(TokenKind::kIdent));
    extract.extractor = ext.text;
    return extract;
  }

  Result<AstSelect> ParseSelect() {
    SCX_RETURN_IF_ERROR(ExpectKeyword("SELECT").status());
    AstSelect select;
    if (ConsumeKeyword("DISTINCT")) select.distinct = true;
    do {
      SCX_ASSIGN_OR_RETURN(AstSelectItem item, ParseSelectItem());
      select.items.push_back(std::move(item));
    } while (Consume(TokenKind::kComma));

    SCX_RETURN_IF_ERROR(ExpectKeyword("FROM").status());
    do {
      SCX_ASSIGN_OR_RETURN(Token src, Expect(TokenKind::kIdent));
      select.sources.push_back(src.text);
    } while (Consume(TokenKind::kComma));
    if (select.sources.size() > 2) {
      return Status::ParseError(
          "at most two relations per SELECT are supported; chain SELECTs for "
          "larger joins");
    }

    if (ConsumeKeyword("WHERE")) {
      do {
        SCX_ASSIGN_OR_RETURN(AstPredicate pred, ParsePredicate());
        select.where.push_back(std::move(pred));
      } while (ConsumeKeyword("AND"));
    }

    if (Peek().IsKeyword("GROUP")) {
      Next();
      SCX_RETURN_IF_ERROR(ExpectKeyword("BY").status());
      do {
        SCX_ASSIGN_OR_RETURN(AstColumnRef col, ParseColumnRef());
        select.group_by.push_back(std::move(col));
      } while (Consume(TokenKind::kComma));
      if (ConsumeKeyword("HAVING")) {
        do {
          SCX_ASSIGN_OR_RETURN(AstPredicate pred, ParsePredicate());
          select.having.push_back(std::move(pred));
        } while (ConsumeKeyword("AND"));
      }
    }
    if (Peek().IsKeyword("ORDER")) {
      Next();
      SCX_RETURN_IF_ERROR(ExpectKeyword("BY").status());
      do {
        SCX_ASSIGN_OR_RETURN(AstColumnRef col, ParseColumnRef());
        select.order_by.push_back(std::move(col));
      } while (Consume(TokenKind::kComma));
    }
    return select;
  }

  Result<AstSelectItem> ParseSelectItem() {
    AstSelectItem item;
    // Aggregate call: ident '(' ... ')'
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen) {
      Token fn = Next();
      Next();  // '('
      SCX_ASSIGN_OR_RETURN(AggFn agg, ResolveAggFn(fn));
      item.is_aggregate = true;
      item.fn = agg;
      if (Peek().kind == TokenKind::kStar) {
        Next();
        if (agg != AggFn::kCount) {
          return Status::ParseError("'*' argument is only valid for Count");
        }
        item.count_star = true;
      } else {
        SCX_ASSIGN_OR_RETURN(AstScalarPtr arg, ParseScalar());
        if (arg->IsBareColumn()) {
          item.column = arg->column;
        } else {
          item.scalar = std::move(arg);
        }
      }
      SCX_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    } else {
      SCX_ASSIGN_OR_RETURN(AstScalarPtr expr, ParseScalar());
      if (expr->IsBareColumn()) {
        item.column = expr->column;
      } else {
        item.scalar = std::move(expr);
      }
    }
    if (ConsumeKeyword("AS")) {
      SCX_ASSIGN_OR_RETURN(Token alias, Expect(TokenKind::kIdent));
      item.alias = alias.text;
    }
    return item;
  }

  /// scalar := term (('+'|'-') term)*
  Result<AstScalarPtr> ParseScalar() {
    SCX_ASSIGN_OR_RETURN(AstScalarPtr lhs, ParseScalarTerm());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      char op = Peek().kind == TokenKind::kPlus ? '+' : '-';
      Next();
      SCX_ASSIGN_OR_RETURN(AstScalarPtr rhs, ParseScalarTerm());
      auto node = std::make_shared<AstScalar>();
      node->kind = AstScalar::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  /// term := factor (('*'|'/') factor)*
  Result<AstScalarPtr> ParseScalarTerm() {
    SCX_ASSIGN_OR_RETURN(AstScalarPtr lhs, ParseScalarFactor());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      char op = Peek().kind == TokenKind::kStar ? '*' : '/';
      Next();
      SCX_ASSIGN_OR_RETURN(AstScalarPtr rhs, ParseScalarFactor());
      auto node = std::make_shared<AstScalar>();
      node->kind = AstScalar::Kind::kBinary;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  /// factor := number | string | colref | '(' scalar ')'
  Result<AstScalarPtr> ParseScalarFactor() {
    auto node = std::make_shared<AstScalar>();
    switch (Peek().kind) {
      case TokenKind::kInt: {
        node->kind = AstScalar::Kind::kLiteral;
        node->literal = Value::Int(std::stoll(Next().text));
        return node;
      }
      case TokenKind::kReal: {
        node->kind = AstScalar::Kind::kLiteral;
        node->literal = Value::Real(std::stod(Next().text));
        return node;
      }
      case TokenKind::kString: {
        node->kind = AstScalar::Kind::kLiteral;
        node->literal = Value::Str(Next().text);
        return node;
      }
      case TokenKind::kIdent: {
        node->kind = AstScalar::Kind::kColumn;
        SCX_ASSIGN_OR_RETURN(node->column, ParseColumnRef());
        return node;
      }
      case TokenKind::kLParen: {
        Next();
        SCX_ASSIGN_OR_RETURN(AstScalarPtr inner, ParseScalar());
        SCX_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
        return inner;
      }
      default:
        return ErrorHere("expected scalar expression");
    }
  }

  Result<AggFn> ResolveAggFn(const Token& tok) const {
    if (tok.IsKeyword("SUM")) return AggFn::kSum;
    if (tok.IsKeyword("COUNT")) return AggFn::kCount;
    if (tok.IsKeyword("MIN")) return AggFn::kMin;
    if (tok.IsKeyword("MAX")) return AggFn::kMax;
    if (tok.IsKeyword("AVG")) return AggFn::kAvg;
    return Status::ParseError("unknown aggregate function '" + tok.text +
                              "' at line " + std::to_string(tok.line));
  }

  Result<AstPredicate> ParsePredicate() {
    AstPredicate pred;
    {
      SCX_ASSIGN_OR_RETURN(AstScalarPtr lhs, ParseScalar());
      if (lhs->IsBareColumn()) {
        pred.lhs = lhs->column;
      } else {
        pred.lhs_scalar = std::move(lhs);
      }
    }
    switch (Peek().kind) {
      case TokenKind::kEq:
        pred.op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        pred.op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        pred.op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        pred.op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        pred.op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        pred.op = CompareOp::kGe;
        break;
      default:
        return ErrorHere("expected comparison operator");
    }
    Next();
    {
      SCX_ASSIGN_OR_RETURN(AstScalarPtr rhs, ParseScalar());
      if (rhs->IsBareColumn()) {
        pred.rhs_is_column = true;
        pred.rhs_column = rhs->column;
      } else if (rhs->kind == AstScalar::Kind::kLiteral) {
        pred.rhs_literal = rhs->literal;
      } else {
        pred.rhs_scalar = std::move(rhs);
      }
    }
    return pred;
  }

  Result<AstColumnRef> ParseColumnRef() {
    AstColumnRef ref;
    SCX_ASSIGN_OR_RETURN(Token first, Expect(TokenKind::kIdent));
    if (Peek().kind == TokenKind::kDot) {
      Next();
      SCX_ASSIGN_OR_RETURN(Token second, Expect(TokenKind::kIdent));
      ref.qualifier = first.text;
      ref.name = second.text;
    } else {
      ref.name = first.text;
    }
    return ref;
  }

  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      Next();
      return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstScript> ParseScript(const std::string& source) {
  SCX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<std::vector<AstScript>> ParseScriptBatch(
    const std::vector<std::string>& sources) {
  if (sources.empty()) {
    return Status::InvalidArgument("ParseScriptBatch: empty batch");
  }
  std::vector<AstScript> scripts;
  scripts.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    Result<AstScript> parsed = ParseScript(sources[i]);
    if (!parsed.ok()) {
      return Status::InvalidArgument("script " + std::to_string(i) + ": " +
                                     parsed.status().message());
    }
    scripts.push_back(std::move(parsed.value()));
  }
  return scripts;
}

}  // namespace scx
