#include "catalog/catalog.h"

namespace scx {

int64_t FileDef::RowWidth() const {
  int64_t w = 0;
  for (const ColumnStats& c : columns) w += c.avg_width;
  return w;
}

int FileDef::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::RegisterFile(FileDef def) {
  if (files_.count(def.path) != 0) {
    return Status::AlreadyExists("file already registered: " + def.path);
  }
  if (def.file_id == 0) def.file_id = next_file_id_++;
  if (def.data_seed == 0) {
    def.data_seed = static_cast<uint64_t>(def.file_id) * 0x9e3779b9u + 1;
  }
  files_.emplace(def.path, std::move(def));
  ++version_;
  return Status::OK();
}

Result<FileDef> Catalog::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file not registered in catalog: " + path);
  }
  return it->second;
}

bool Catalog::HasFile(const std::string& path) const {
  return files_.count(path) != 0;
}

Status Catalog::RegisterLog(const std::string& path,
                            const std::vector<std::string>& names,
                            int64_t row_count,
                            const std::vector<int64_t>& distinct_counts,
                            uint64_t data_seed) {
  if (names.size() != distinct_counts.size()) {
    return Status::InvalidArgument(
        "RegisterLog: names/distinct_counts size mismatch");
  }
  FileDef def;
  def.path = path;
  def.row_count = row_count;
  def.data_seed = data_seed;
  for (size_t i = 0; i < names.size(); ++i) {
    ColumnStats cs;
    cs.name = names[i];
    cs.type = DataType::kInt64;
    cs.distinct_count = distinct_counts[i];
    cs.avg_width = 8;
    def.columns.push_back(std::move(cs));
  }
  return RegisterFile(std::move(def));
}

}  // namespace scx
