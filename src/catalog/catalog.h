#ifndef SCX_CATALOG_CATALOG_H_
#define SCX_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace scx {

/// Statistics for one column of an input file.
struct ColumnStats {
  std::string name;
  DataType type = DataType::kInt64;
  /// Number of distinct values. Drives group-by cardinality, partition skew
  /// and (for the executor) the synthetic data domain size.
  int64_t distinct_count = 1000;
  /// Average serialized width in bytes.
  int64_t avg_width = 8;
  /// Power-law key skew of the synthetic data: 0 (default) keeps the exact
  /// legacy uniform draw (hash % distinct_count); alpha > 0 draws key
  /// floor(distinct_count * u^(1+alpha)) so low-numbered keys are hot and
  /// hash-partitioned work piles onto a few machines (hostile-cluster
  /// simulation, docs/architecture.md §17). Seed-deterministic either way.
  double skew_alpha = 0;
};

/// Metadata and statistics for a registered input file. The paper's scripts
/// read raw logs through extractors; here a file definition doubles as a
/// deterministic synthetic-data spec so the simulated executor can produce
/// the same rows on every machine-set and every run.
struct FileDef {
  /// Unique file id; the fingerprint of an EXTRACT leaf (paper Def. 1 case 1).
  int64_t file_id = 0;
  std::string path;
  std::vector<ColumnStats> columns;
  int64_t row_count = 1000000;
  /// Seed for deterministic synthetic row generation.
  uint64_t data_seed = 0;

  /// Average row width in bytes (sum of column widths).
  int64_t RowWidth() const;
  /// Index of column `name`, or -1.
  int ColumnIndex(const std::string& name) const;
};

/// Registry of input files keyed by path. Files must be registered before a
/// script referencing them is bound.
class Catalog {
 public:
  /// Registers `def` (assigning `file_id` if zero). Fails on duplicate path.
  Status RegisterFile(FileDef def);

  /// Looks a file up by path.
  Result<FileDef> GetFile(const std::string& path) const;

  bool HasFile(const std::string& path) const;

  /// Convenience: registers a log file with `columns` int64 columns named
  /// by `names`, each with the given distinct count.
  Status RegisterLog(const std::string& path,
                     const std::vector<std::string>& names, int64_t row_count,
                     const std::vector<int64_t>& distinct_counts,
                     uint64_t data_seed = 0);

  const std::map<std::string, FileDef>& files() const { return files_; }

  /// Monotonic catalog version. Bumped on every registration (and manually
  /// via BumpVersion); part of the cross-query spool cache key, so cached
  /// results can never outlive the catalog state they were computed from.
  uint64_t version() const { return version_; }
  void BumpVersion() { ++version_; }

 private:
  std::map<std::string, FileDef> files_;
  int64_t next_file_id_ = 1;
  uint64_t version_ = 1;
};

}  // namespace scx

#endif  // SCX_CATALOG_CATALOG_H_
