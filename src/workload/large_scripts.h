#ifndef SCX_WORKLOAD_LARGE_SCRIPTS_H_
#define SCX_WORKLOAD_LARGE_SCRIPTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace scx {

/// Generator spec for LS-style synthetic scripts. The paper's LS1/LS2 are
/// proprietary production scripts; only their structural statistics are
/// published (operator count, shared-group count, consumers per shared
/// group). The generator reproduces exactly those statistics — the
/// substitution documented in DESIGN.md.
struct LargeScriptSpec {
  /// Consumers per shared group, e.g. {2,2,2,3} for LS1.
  std::vector<int> shared_consumers;
  /// Total operators in the initial (conventional) operator DAG to target;
  /// reached by adding independent filler pipelines and filter padding.
  int target_ops = 101;
  int64_t rows_per_file = 1000000;
  uint64_t seed = 42;
};

struct GeneratedScript {
  std::string text;
  Catalog catalog;
  /// Operators the generator predicts for the initial DAG (== target_ops
  /// unless target_ops is too small to hold the shared modules).
  int predicted_ops = 0;
};

/// Emits a SCOPE-dialect script with the requested structure: one module per
/// shared group (extract → filter → shared aggregate → one sub-aggregation
/// chain per consumer → outputs) plus independent filler pipelines.
GeneratedScript GenerateLargeScript(const LargeScriptSpec& spec);

/// LS1 (paper Fig. 6): 101 operators, 4 shared groups — 3 with 2 consumers,
/// 1 with 3 consumers.
LargeScriptSpec Ls1Spec();

/// LS2 (paper Fig. 6): 1034 operators, 17 shared groups — 15 with 2
/// consumers, 1 with 4, 1 with 5.
LargeScriptSpec Ls2Spec();

}  // namespace scx

#endif  // SCX_WORKLOAD_LARGE_SCRIPTS_H_
