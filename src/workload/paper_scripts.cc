#include "workload/paper_scripts.h"

namespace scx {

const char kScriptS1[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
)";

const char kScriptS2[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,A,Sum(S) AS S1 FROM R GROUP BY B,A;
R2 = SELECT A,C,Sum(S) AS S2 FROM R GROUP BY A,C;
R3 = SELECT A,Sum(S) AS S3 FROM R GROUP BY A;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT R3 TO "result3.out";
)";

const char kScriptS3[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C,S1,S2 FROM R1,R2 WHERE R1.B=R2.B;
T0 = EXTRACT A,B,C,D FROM "test2.log" USING LogExtractor;
T  = SELECT A,B,C,Sum(D) AS S FROM T0 GROUP BY A,B,C;
T1 = SELECT B,C,Sum(S) AS S1 FROM T GROUP BY B,C;
T2 = SELECT B,A,Sum(S) AS S2 FROM T GROUP BY B,A;
TT = SELECT T1.B,A,C,S1,S2 FROM T1,T2 WHERE T1.B=T2.B;
OUTPUT RR TO "result1.out";
OUTPUT TT TO "result2.out";
)";

const char kScriptS4[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
)";

const char kScriptFig3a[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT A,B,Sum(S) AS S1 FROM R GROUP BY A,B;
R2 = SELECT B,C,Sum(S) AS S2 FROM R GROUP BY B,C;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
)";

const char kScriptFig3c[] = R"(
R0 = EXTRACT A,B,C,D FROM "test.log" USING LogExtractor;
R  = SELECT A,B,C,Sum(D) AS S FROM R0 GROUP BY A,B,C;
R1 = SELECT B,C,Sum(S) AS S1 FROM R GROUP BY B,C;
R2 = SELECT B,A,Sum(S) AS S2 FROM R GROUP BY B,A;
RR = SELECT R1.B,A,C FROM R1,R2 WHERE R1.B=R2.B;
OUTPUT R1 TO "result1.out";
OUTPUT R2 TO "result2.out";
OUTPUT RR TO "result3.out";
)";

namespace {

Catalog MakeCatalog(int64_t rows, int64_t ndv_a, int64_t ndv_b, int64_t ndv_c,
                    int64_t ndv_d) {
  Catalog catalog;
  Status s1 = catalog.RegisterLog("test.log", {"A", "B", "C", "D"}, rows,
                                  {ndv_a, ndv_b, ndv_c, ndv_d},
                                  /*data_seed=*/11);
  Status s2 = catalog.RegisterLog("test2.log", {"A", "B", "C", "D"}, rows,
                                  {ndv_a, ndv_b, ndv_c, ndv_d},
                                  /*data_seed=*/23);
  (void)s1;
  (void)s2;
  return catalog;
}

}  // namespace

Catalog MakePaperCatalog(int64_t rows) {
  // NDVs chosen so that: ndv(B)=400 >= machines (no skew penalty on {B}),
  // ndv(A,B,C) ~ rows/3 (the shared aggregate stays large), ndv(A)=40 < 100
  // (partitioning on {A} alone is visibly skewed).
  return MakeCatalog(rows, /*A=*/40, /*B=*/400, /*C=*/40, /*D=*/10000);
}

Catalog MakeExecutionCatalog(int64_t rows) {
  return MakeCatalog(rows, /*A=*/8, /*B=*/50, /*C=*/8, /*D=*/500);
}

}  // namespace scx
