#include "workload/large_scripts.h"

#include <algorithm>

namespace scx {

namespace {

/// Rotating grouping sets for the consumers of a shared {A,B,C} aggregate.
const char* const kConsumerGroupSets[] = {"A,B", "B,C", "A,C", "B", "A,B,C"};
/// Second-level grouping: a subset of the consumer's grouping columns.
const char* const kSecondLevelSets[] = {"A", "B", "A", "B", "B"};

std::string ModuleScript(int j, int consumers) {
  std::string file = "ls_m" + std::to_string(j) + ".log";
  std::string e = "E" + std::to_string(j);
  std::string f = "F" + std::to_string(j);
  std::string s = "S" + std::to_string(j);
  std::string out;
  out += e + " = EXTRACT A,B,C,D FROM \"" + file + "\" USING LogExtractor;\n";
  out += f + " = SELECT A,B,C,D FROM " + e + " WHERE D > 3;\n";
  out += s + " = SELECT A,B,C,Sum(D) AS S FROM " + f + " GROUP BY A,B,C;\n";
  for (int c = 0; c < consumers; ++c) {
    std::string base = "C" + std::to_string(j) + "_" + std::to_string(c);
    std::string deep = "D" + std::to_string(j) + "_" + std::to_string(c);
    const char* groups = kConsumerGroupSets[c % 5];
    const char* second = kSecondLevelSets[c % 5];
    out += base + " = SELECT " + groups + ",Sum(S) AS T FROM " + s +
           " GROUP BY " + groups + ";\n";
    out += deep + " = SELECT " + second + ",Sum(T) AS U FROM " + base +
           " GROUP BY " + second + ";\n";
    out += "OUTPUT " + deep + " TO \"out_m" + std::to_string(j) + "_" +
           std::to_string(c) + ".out\";\n";
  }
  return out;
}

std::string FillerScript(int i, int extra_filters) {
  std::string file = "ls_f" + std::to_string(i) + ".log";
  std::string e = "X" + std::to_string(i);
  std::string f = "Y" + std::to_string(i);
  std::string a = "Z" + std::to_string(i);
  std::string b = "W" + std::to_string(i);
  std::string out;
  out += e + " = EXTRACT A,B,C,D FROM \"" + file + "\" USING LogExtractor;\n";
  out += f + " = SELECT A,B,C,D FROM " + e + " WHERE C > 1;\n";
  out += a + " = SELECT A,B,Sum(D) AS S FROM " + f + " GROUP BY A,B;\n";
  std::string prev = a;
  for (int k = 0; k < extra_filters; ++k) {
    std::string p = "P" + std::to_string(i) + "_" + std::to_string(k);
    out += p + " = SELECT A,B,S FROM " + prev + " WHERE A > 0;\n";
    prev = p;
  }
  out += b + " = SELECT A,Sum(S) AS V FROM " + prev + " GROUP BY A;\n";
  out += "OUTPUT " + b + " TO \"out_f" + std::to_string(i) + ".out\";\n";
  return out;
}

}  // namespace

GeneratedScript GenerateLargeScript(const LargeScriptSpec& spec) {
  GeneratedScript out;

  // Operator accounting (matches the binder's group production):
  // module with k consumers: extract + filter + shared agg + k*(agg, agg,
  // output) = 3 + 3k; filler: extract + filter + agg + agg + output = 5
  // (+1 per padding filter); sequence root: 1.
  int module_ops = 0;
  for (int k : spec.shared_consumers) module_ops += 3 + 3 * k;
  int remaining = spec.target_ops - module_ops - 1;  // -1 for Sequence
  int fillers = std::max(0, remaining / 5);
  int pad = std::max(0, remaining - fillers * 5);
  out.predicted_ops = module_ops + fillers * 5 + pad + 1;

  for (size_t j = 0; j < spec.shared_consumers.size(); ++j) {
    out.text += ModuleScript(static_cast<int>(j),
                             spec.shared_consumers[j]);
    Status s = out.catalog.RegisterLog(
        "ls_m" + std::to_string(j) + ".log", {"A", "B", "C", "D"},
        spec.rows_per_file, {40, 400, 40, 10000},
        spec.seed + 100 + static_cast<uint64_t>(j));
    (void)s;
  }
  for (int i = 0; i < fillers; ++i) {
    out.text += FillerScript(i, i == fillers - 1 ? pad : 0);
    Status s = out.catalog.RegisterLog(
        "ls_f" + std::to_string(i) + ".log", {"A", "B", "C", "D"},
        spec.rows_per_file / 4, {40, 400, 40, 10000},
        spec.seed + 10000 + static_cast<uint64_t>(i));
    (void)s;
  }
  return out;
}

LargeScriptSpec Ls1Spec() {
  LargeScriptSpec spec;
  spec.shared_consumers = {2, 2, 2, 3};
  spec.target_ops = 101;
  spec.seed = 42;
  return spec;
}

LargeScriptSpec Ls2Spec() {
  LargeScriptSpec spec;
  spec.shared_consumers.assign(15, 2);
  spec.shared_consumers.push_back(4);
  spec.shared_consumers.push_back(5);
  spec.target_ops = 1034;
  spec.seed = 77;
  return spec;
}

}  // namespace scx
