#ifndef SCX_WORKLOAD_PAPER_SCRIPTS_H_
#define SCX_WORKLOAD_PAPER_SCRIPTS_H_

#include <string>

#include "catalog/catalog.h"

namespace scx {

/// The four evaluation scripts of the paper's Figure 6, verbatim (modulo the
/// dialect's string-literal path syntax).

/// S1: single shared group with two consumers (the paper's motivating
/// script, Sec. I / Fig. 1 / Fig. 8).
extern const char kScriptS1[];

/// S2: single shared group with three consumers.
extern const char kScriptS2[];

/// S3: two shared groups with different LCAs.
extern const char kScriptS3[];

/// S4: two non-independent shared groups with the same LCA.
extern const char kScriptS4[];

/// The DAG-shape scripts of the paper's Figure 3 (used to validate
/// shared-group propagation and LCA identification).
extern const char kScriptFig3a[];  ///< single shared group, LCA = Sequence
extern const char kScriptFig3c[];  ///< LCA above the lowest common ancestor

/// Registers test.log / test2.log with statistics calibrated so that the
/// paper's plan shapes emerge: B has enough distinct values that hash
/// partitioning on {B} keeps the cluster busy, and aggregating on {A,B,C}
/// reduces rows only ~3x so repartitioning the shared result is expensive
/// (which is what makes a covering subset worthwhile).
///
/// `rows` scales the input size: use the default for optimizer experiments
/// and something small (e.g. 20'000) for executor-backed tests.
Catalog MakePaperCatalog(int64_t rows = 2000000);

/// Matching small-cluster / small-data catalog for execution tests.
Catalog MakeExecutionCatalog(int64_t rows = 20000);

}  // namespace scx

#endif  // SCX_WORKLOAD_PAPER_SCRIPTS_H_
