#ifndef SCX_PROPS_PHYSICAL_PROPS_H_
#define SCX_PROPS_PHYSICAL_PROPS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/column_set.h"

namespace scx {

/// How a delivered row stream is distributed over the cluster.
enum class PartitioningKind {
  kRandom,  ///< no co-location guarantee (e.g. raw extract)
  kHash,    ///< hash-partitioned on `cols`: rows equal on cols are co-located
  kRange,   ///< range-partitioned on the ordered `range_cols`: partition i
            ///< holds a contiguous lexicographic key range; equal rows are
            ///< co-located AND partition order follows key order
  kSerial,  ///< single partition on one machine
};

/// Delivered (physical) partitioning of a row stream.
struct Partitioning {
  PartitioningKind kind = PartitioningKind::kRandom;
  ColumnSet cols;  ///< kHash: hash columns; kRange: set view of range_cols
  /// kRange only: the ordered key columns defining the ranges.
  std::vector<ColumnId> range_cols;

  static Partitioning Random() { return {PartitioningKind::kRandom, {}, {}}; }
  static Partitioning Serial() { return {PartitioningKind::kSerial, {}, {}}; }
  static Partitioning Hash(ColumnSet c) {
    return {PartitioningKind::kHash, std::move(c), {}};
  }
  static Partitioning Range(std::vector<ColumnId> ordered) {
    Partitioning p;
    p.kind = PartitioningKind::kRange;
    p.cols = ColumnSet::FromVector(ordered);
    p.range_cols = std::move(ordered);
    return p;
  }

  uint64_t HashValue() const;
  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;

  friend bool operator==(const Partitioning& a, const Partitioning& b) {
    return a.kind == b.kind && a.cols == b.cols &&
           a.range_cols == b.range_cols;
  }
};

/// A partitioning *requirement*. The paper specifies partitioning
/// requirements as ranges, e.g. [∅, {A,B,C}] — satisfied by hash
/// partitioning on any non-empty subset of {A,B,C} (kHashSubset here).
/// kHashExact pins the scheme exactly; it is how phase 2 enforces one
/// particular history entry at a shared group.
enum class PartReqKind {
  kNone,        ///< anything goes
  kSerial,      ///< must be a single partition
  kHashSubset,  ///< co-located on any non-empty S ⊆ cols (hash or range),
                ///< or serial
  kHashExact,   ///< hash on exactly cols
  kRangeExact,  ///< range on exactly the ordered cols (in `range_cols`)
};

struct PartitioningReq {
  PartReqKind kind = PartReqKind::kNone;
  ColumnSet cols;
  /// kRangeExact only: the required ordered range columns.
  std::vector<ColumnId> range_cols;

  static PartitioningReq None() { return {PartReqKind::kNone, {}, {}}; }
  static PartitioningReq Serial() { return {PartReqKind::kSerial, {}, {}}; }
  static PartitioningReq SubsetOf(ColumnSet c) {
    return {PartReqKind::kHashSubset, std::move(c), {}};
  }
  static PartitioningReq Exactly(ColumnSet c) {
    return {PartReqKind::kHashExact, std::move(c), {}};
  }
  static PartitioningReq RangeExactly(std::vector<ColumnId> ordered) {
    PartitioningReq r;
    r.kind = PartReqKind::kRangeExact;
    r.cols = ColumnSet::FromVector(ordered);
    r.range_cols = std::move(ordered);
    return r;
  }

  bool IsTrivial() const { return kind == PartReqKind::kNone; }

  /// True iff `delivered` satisfies this requirement. A single partition
  /// trivially co-locates everything, so kSerial satisfies kHashSubset.
  bool SatisfiedBy(const Partitioning& delivered) const;

  uint64_t HashValue() const;
  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;

  friend bool operator==(const PartitioningReq& a, const PartitioningReq& b) {
    return a.kind == b.kind && a.cols == b.cols &&
           a.range_cols == b.range_cols;
  }
};

/// A per-partition (local) sort order: ascending on each listed column.
struct SortSpec {
  std::vector<ColumnId> cols;

  bool Empty() const { return cols.empty(); }

  /// True iff this delivered order satisfies `required` — i.e. `required`
  /// is a prefix of this order.
  bool SatisfiesPrefix(const SortSpec& required) const;

  /// Set view of the sort columns.
  ColumnSet AsSet() const { return ColumnSet::FromVector(cols); }

  uint64_t HashValue() const;
  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;

  friend bool operator==(const SortSpec& a, const SortSpec& b) {
    return a.cols == b.cols;
  }
};

/// Properties required of the rows a plan delivers (paper's ReqProp):
/// global partitioning plus per-partition sort order.
struct RequiredProps {
  PartitioningReq partitioning;
  SortSpec sort;

  bool IsTrivial() const { return partitioning.IsTrivial() && sort.Empty(); }

  uint64_t HashValue() const;
  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;
  std::string ToString() const;

  friend bool operator==(const RequiredProps& a, const RequiredProps& b) {
    return a.partitioning == b.partitioning && a.sort == b.sort;
  }
};

/// Properties actually delivered by a physical plan (paper's DlvdProp).
struct DeliveredProps {
  Partitioning partitioning;
  SortSpec sort;

  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;
  std::string ToString() const;

  friend bool operator==(const DeliveredProps& a, const DeliveredProps& b) {
    return a.partitioning == b.partitioning && a.sort == b.sort;
  }
};

/// Paper's PropertySatisfied: `delivered` meets `required`.
bool PropertySatisfied(const RequiredProps& required,
                       const DeliveredProps& delivered);

}  // namespace scx

#endif  // SCX_PROPS_PHYSICAL_PROPS_H_
