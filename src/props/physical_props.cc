#include "props/physical_props.h"

#include "common/hash.h"

namespace scx {

namespace {

std::string DefaultName(ColumnId id) { return "#" + std::to_string(id); }

}  // namespace

uint64_t Partitioning::HashValue() const {
  uint64_t h = HashCombine(static_cast<uint64_t>(kind) + 0x51, cols.Hash());
  for (ColumnId c : range_cols) h = HashCombine(h, c);
  return h;
}

std::string Partitioning::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  switch (kind) {
    case PartitioningKind::kRandom:
      return "random";
    case PartitioningKind::kSerial:
      return "serial";
    case PartitioningKind::kHash:
      return "hash" + cols.ToString(namer);
    case PartitioningKind::kRange: {
      std::string out = "range(";
      for (size_t i = 0; i < range_cols.size(); ++i) {
        if (i > 0) out += ",";
        out += namer(range_cols[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

bool PartitioningReq::SatisfiedBy(const Partitioning& delivered) const {
  switch (kind) {
    case PartReqKind::kNone:
      return true;
    case PartReqKind::kSerial:
      return delivered.kind == PartitioningKind::kSerial;
    case PartReqKind::kHashSubset:
      // Co-location requirement: any scheme that puts rows equal on a
      // non-empty subset of `cols` into one partition qualifies — hash or
      // range on such a subset, or everything on one machine.
      if (delivered.kind == PartitioningKind::kSerial) return true;
      return (delivered.kind == PartitioningKind::kHash ||
              delivered.kind == PartitioningKind::kRange) &&
             !delivered.cols.Empty() && delivered.cols.IsSubsetOf(cols);
    case PartReqKind::kHashExact:
      return delivered.kind == PartitioningKind::kHash &&
             delivered.cols == cols;
    case PartReqKind::kRangeExact:
      return delivered.kind == PartitioningKind::kRange &&
             delivered.range_cols == range_cols;
  }
  return false;
}

uint64_t PartitioningReq::HashValue() const {
  uint64_t h = HashCombine(static_cast<uint64_t>(kind) + 0x97, cols.Hash());
  for (ColumnId c : range_cols) h = HashCombine(h, c);
  return h;
}

std::string PartitioningReq::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  switch (kind) {
    case PartReqKind::kNone:
      return "any";
    case PartReqKind::kSerial:
      return "serial";
    case PartReqKind::kHashSubset:
      return "[∅," + cols.ToString(namer) + "]";
    case PartReqKind::kHashExact:
      return "[" + cols.ToString(namer) + "," + cols.ToString(namer) + "]";
    case PartReqKind::kRangeExact: {
      std::string out = "range(";
      for (size_t i = 0; i < range_cols.size(); ++i) {
        if (i > 0) out += ",";
        out += namer(range_cols[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

bool SortSpec::SatisfiesPrefix(const SortSpec& required) const {
  if (required.cols.size() > cols.size()) return false;
  for (size_t i = 0; i < required.cols.size(); ++i) {
    if (cols[i] != required.cols[i]) return false;
  }
  return true;
}

uint64_t SortSpec::HashValue() const {
  uint64_t h = 0x3c6ef372fe94f82bULL;
  for (ColumnId c : cols) h = HashCombine(h, c);
  return h;
}

std::string SortSpec::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  if (cols.empty()) return "-";
  std::string out = "(";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += namer(cols[i]);
  }
  out += ")";
  return out;
}

uint64_t RequiredProps::HashValue() const {
  return HashCombine(partitioning.HashValue(), sort.HashValue());
}

std::string RequiredProps::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  return "part=" + partitioning.ToString(namer) +
         " sort=" + sort.ToString(namer);
}

std::string RequiredProps::ToString() const { return ToString(DefaultName); }

std::string DeliveredProps::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  return "part=" + partitioning.ToString(namer) +
         " sort=" + sort.ToString(namer);
}

std::string DeliveredProps::ToString() const { return ToString(DefaultName); }

bool PropertySatisfied(const RequiredProps& required,
                       const DeliveredProps& delivered) {
  return required.partitioning.SatisfiedBy(delivered.partitioning) &&
         delivered.sort.SatisfiesPrefix(required.sort);
}

}  // namespace scx
