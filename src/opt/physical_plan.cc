#include "opt/physical_plan.h"

#include <cmath>
#include <map>
#include <unordered_map>

namespace scx {

const char* PhysicalOpKindName(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kExtract:
      return "Extract";
    case PhysicalOpKind::kFilter:
      return "Filter";
    case PhysicalOpKind::kProject:
      return "Project";
    case PhysicalOpKind::kCompute:
      return "Compute";
    case PhysicalOpKind::kHashAgg:
      return "HashAgg";
    case PhysicalOpKind::kStreamAgg:
      return "StreamAgg";
    case PhysicalOpKind::kHashJoin:
      return "HashJoin";
    case PhysicalOpKind::kMergeJoin:
      return "MergeJoin";
    case PhysicalOpKind::kUnionAll:
      return "UnionAll";
    case PhysicalOpKind::kSpool:
      return "Spool";
    case PhysicalOpKind::kSpoolScan:
      return "SpoolScan";
    case PhysicalOpKind::kOutput:
      return "Output";
    case PhysicalOpKind::kSequence:
      return "Sequence";
    case PhysicalOpKind::kHashExchange:
      return "Repartition";
    case PhysicalOpKind::kMergeExchange:
      return "MergeRepartition";
    case PhysicalOpKind::kRangeExchange:
      return "RangeRepartition";
    case PhysicalOpKind::kBroadcastExchange:
      return "Broadcast";
    case PhysicalOpKind::kGather:
      return "Gather";
    case PhysicalOpKind::kSort:
      return "Sort";
  }
  return "Unknown";
}

namespace {

std::string AggModeSuffix(const LogicalNodePtr& proto) {
  if (proto == nullptr) return "";
  switch (proto->kind()) {
    case LogicalOpKind::kLocalGbAgg:
      return "(Local)";
    case LogicalOpKind::kGlobalGbAgg:
      return "(Global)";
    default:
      return "";
  }
}

}  // namespace

std::string PhysicalNode::Describe() const {
  std::string out = PhysicalOpKindName(kind);
  auto namer = [this](ColumnId id) {
    if (proto != nullptr) {
      std::string name = proto->schema().NameOf(id);
      if (name[0] != '#') return name;
      // Fall back to child proto schemas (enforcer columns usually name
      // child outputs).
    }
    for (const PhysicalNodePtr& c : children) {
      if (c->proto != nullptr) {
        std::string name = c->proto->schema().NameOf(id);
        if (name[0] != '#') return name;
      }
    }
    return "#" + std::to_string(id);
  };
  switch (kind) {
    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      out += AggModeSuffix(proto);
      out += "[" +
             ColumnSet::FromVector(proto->group_cols).ToString(namer) + "]";
      break;
    }
    case PhysicalOpKind::kExtract:
      out += "[" + proto->file.path + "]";
      break;
    case PhysicalOpKind::kOutput:
      out += "[" + proto->output_path + "]";
      break;
    case PhysicalOpKind::kHashExchange:
    case PhysicalOpKind::kMergeExchange:
    case PhysicalOpKind::kRangeExchange:
      out += "[" + exchange_cols.ToString(namer) + "]";
      break;
    case PhysicalOpKind::kSort:
      out += sort_spec.ToString(namer);
      break;
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      out += "[";
      for (size_t i = 0; i < proto->join_keys.size(); ++i) {
        if (i > 0) out += ",";
        out += namer(proto->join_keys[i].first);
        out += "=";
        out += namer(proto->join_keys[i].second);
      }
      out += "]";
      break;
    }
    default:
      break;
  }
  out += "  {" + delivered.ToString(namer) + "}";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "  cost=%.0f", own_cost);
  out += buf;
  return out;
}

PhysicalNodePtr MakePhysicalNode(PhysicalOpKind kind, LogicalNodePtr proto,
                                 GroupId group,
                                 std::vector<PhysicalNodePtr> children,
                                 DeliveredProps delivered, double own_cost) {
  auto node = std::make_shared<PhysicalNode>();
  node->kind = kind;
  node->proto = std::move(proto);
  node->group = group;
  node->children = std::move(children);
  node->delivered = std::move(delivered);
  node->own_cost = own_cost;
  node->tree_cost = own_cost;
  node->cost_lb = own_cost;
  for (const PhysicalNodePtr& c : node->children) {
    node->tree_cost += c->tree_cost;
    if (own_cost + c->cost_lb > node->cost_lb) {
      node->cost_lb = own_cost + c->cost_lb;
    }
  }
  return node;
}

namespace {

// refs/order collection over the plan DAG. The summation below walks the
// `order` vector, whose sequence comes from the DFS recursion alone — so
// switching the refs container from the ordered map to a hash map keeps
// the floating-point addition order (and thus the cost) bit-identical.
void CollectDag(const PhysicalNodePtr& node,
                std::unordered_map<const PhysicalNode*, int>* refs,
                std::vector<const PhysicalNode*>* order) {
  auto [it, inserted] = refs->emplace(node.get(), 0);
  ++it->second;
  if (!inserted) return;
  for (const PhysicalNodePtr& c : node->children) {
    CollectDag(c, refs, order);
  }
  order->push_back(node.get());
}

}  // namespace

double DagCost(const PhysicalNodePtr& root) {
  double memo = root->dag_cost_memo.load(std::memory_order_relaxed);
  if (!std::isnan(memo)) return memo;
  std::unordered_map<const PhysicalNode*, int> refs;
  std::vector<const PhysicalNode*> order;
  CollectDag(root, &refs, &order);
  double total = 0;
  for (const PhysicalNode* n : order) {
    total += n->own_cost;
    int extra = refs.at(n) - 1;
    if (extra > 0) total += extra * n->extra_consumer_cost;
  }
  root->dag_cost_memo.store(total, std::memory_order_relaxed);
  return total;
}

double TreeCost(const PhysicalNodePtr& root) { return root->tree_cost; }

int CountDagNodes(const PhysicalNodePtr& root) {
  std::unordered_map<const PhysicalNode*, int> refs;
  std::vector<const PhysicalNode*> order;
  CollectDag(root, &refs, &order);
  return static_cast<int>(order.size());
}

namespace {

void PrintNode(const PhysicalNodePtr& node, int indent,
               std::map<const PhysicalNode*, int>* ids, int* next,
               std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  auto it = ids->find(node.get());
  if (it != ids->end()) {
    *out += "@" + std::to_string(it->second) + " (shared, see above)\n";
    return;
  }
  int id = (*next)++;
  (*ids)[node.get()] = id;
  *out += "@" + std::to_string(id) + " " + node->Describe() + "\n";
  for (const PhysicalNodePtr& c : node->children) {
    PrintNode(c, indent + 1, ids, next, out);
  }
}

}  // namespace

std::string PrintPhysicalPlan(const PhysicalNodePtr& root) {
  std::string out;
  std::map<const PhysicalNode*, int> ids;
  int next = 1;
  PrintNode(root, 0, &ids, &next, &out);
  return out;
}

}  // namespace scx
