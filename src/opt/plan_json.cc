#include "opt/plan_json.h"

#include <map>

#include "core/optimizer.h"

namespace scx {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AssignIds(const PhysicalNodePtr& node,
               std::map<const PhysicalNode*, int>* ids,
               std::vector<const PhysicalNode*>* order) {
  if (ids->count(node.get())) return;
  int id = static_cast<int>(ids->size());
  (*ids)[node.get()] = id;
  order->push_back(node.get());
  for (const PhysicalNodePtr& c : node->children) AssignIds(c, ids, order);
}

void AppendNode(const PhysicalNode& node,
                const std::map<const PhysicalNode*, int>& ids,
                std::string* out) {
  *out += "{\"id\":" + std::to_string(ids.at(&node));
  *out += ",\"kind\":";
  AppendEscaped(PhysicalOpKindName(node.kind), out);
  *out += ",\"cost\":" + Num(node.own_cost);
  *out += ",\"tree_cost\":" + Num(node.tree_cost);
  *out += ",\"delivered\":";
  AppendEscaped(node.delivered.ToString(), out);
  if (node.proto != nullptr && !node.proto->result_name.empty()) {
    *out += ",\"result\":";
    AppendEscaped(node.proto->result_name, out);
  }
  if (node.kind == PhysicalOpKind::kOutput && node.proto != nullptr) {
    *out += ",\"path\":";
    AppendEscaped(node.proto->output_path, out);
  }
  if (!node.exchange_cols.Empty()) {
    *out += ",\"exchange_cols\":";
    AppendEscaped(node.exchange_cols.ToString(), out);
  }
  if (!node.sort_spec.Empty()) {
    *out += ",\"sort\":";
    AppendEscaped(node.sort_spec.ToString(
                      [](ColumnId id) { return "#" + std::to_string(id); }),
                  out);
  }
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(ids.at(node.children[i].get()));
  }
  *out += "]}";
}

}  // namespace

std::string PlanToJson(const PhysicalNodePtr& root) {
  if (root == nullptr) return "{\"root\":null,\"nodes\":[]}";
  std::map<const PhysicalNode*, int> ids;
  std::vector<const PhysicalNode*> order;
  AssignIds(root, &ids, &order);
  std::string out = "{\"root\":0,\"dag_cost\":" + Num(DagCost(root)) +
                    ",\"tree_cost\":" + Num(TreeCost(root)) + ",\"nodes\":[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ",";
    AppendNode(*order[i], ids, &out);
  }
  out += "]}";
  return out;
}

std::string DiagnosticsToJson(const OptimizeDiagnostics& d) {
  std::string out = "{";
  out += "\"phase1_cost\":" + Num(d.phase1_cost);
  out += ",\"final_cost\":" + Num(d.final_cost);
  out += ",\"rounds_planned\":" + std::to_string(d.rounds_planned);
  out += ",\"rounds_executed\":" + std::to_string(d.rounds_executed);
  out += ",\"num_shared_groups\":" + std::to_string(d.num_shared_groups);
  out += ",\"explicit_shared\":" + std::to_string(d.explicit_shared);
  out += ",\"merged_subexpressions\":" +
         std::to_string(d.merged_subexpressions);
  out += ",\"reachable_groups\":" + std::to_string(d.reachable_groups);
  out += ",\"num_scripts\":" + std::to_string(d.num_scripts);
  out += ",\"cross_script_shared_groups\":" +
         std::to_string(d.cross_script_shared_groups);
  out += ",\"optimize_seconds\":" + Num(d.optimize_seconds);
  out += ",\"phase2_seconds\":" + Num(d.phase2_seconds);
  out += std::string(",\"budget_exhausted\":") +
         (d.budget_exhausted ? "true" : "false");
  out += ",\"cache\":{";
  out += "\"winner_hits\":" + std::to_string(d.cache.winner_hits);
  out += ",\"winner_misses\":" + std::to_string(d.cache.winner_misses);
  out += ",\"spool_hits\":" + std::to_string(d.cache.spool_hits);
  out += ",\"spool_misses\":" + std::to_string(d.cache.spool_misses);
  out += ",\"pruned_alternatives\":" +
         std::to_string(d.cache.pruned_alternatives);
  out += ",\"pruned_rounds\":" + std::to_string(d.cache.pruned_rounds);
  out += ",\"interner_size\":" + std::to_string(d.cache.interner_size);
  out += "}";
  out += ",\"lca_of\":{";
  bool first = true;
  for (const auto& [s, lca] : d.lca_of) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::to_string(s) + "\":" + std::to_string(lca);
  }
  out += "},\"history_sizes\":{";
  first = true;
  for (const auto& [s, n] : d.history_sizes) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::to_string(s) + "\":" + std::to_string(n);
  }
  out += "},\"round_trace\":[";
  for (size_t i = 0; i < d.round_trace.size(); ++i) {
    const RoundTraceEntry& e = d.round_trace[i];
    if (i > 0) out += ",";
    out += "{\"lca\":" + std::to_string(e.lca);
    out += ",\"round\":" + std::to_string(e.round_index);
    out += ",\"cost\":" + Num(e.cost);
    out += ",\"best_so_far\":" + Num(e.best_so_far);
    out += ",\"assignment\":{";
    bool f2 = true;
    for (const auto& [s, idx] : e.assignment) {
      if (!f2) out += ",";
      f2 = false;
      out += "\"" + std::to_string(s) + "\":" + std::to_string(idx);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace scx
