#include "opt/plan_validator.h"

#include <set>

namespace scx {

namespace {

Status Violation(const PhysicalNode& node, const std::string& what) {
  return Status::Internal("plan invariant violated at [" + node.Describe() +
                          "]: " + what);
}

Status CheckArity(const PhysicalNode& node) {
  size_t want;
  switch (node.kind) {
    case PhysicalOpKind::kExtract:
      want = 0;
      break;
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin:
      want = 2;
      break;
    case PhysicalOpKind::kSequence:
      if (node.children.empty()) {
        return Violation(node, "Sequence must have children");
      }
      return Status::OK();
    case PhysicalOpKind::kUnionAll: {
      if (node.children.size() < 2) {
        return Violation(node, "UnionAll needs at least two children");
      }
      int width = node.proto->schema().NumColumns();
      for (const PhysicalNodePtr& c : node.children) {
        if (c->proto->schema().NumColumns() != width) {
          return Violation(node, "UnionAll child width mismatch");
        }
      }
      return Status::OK();
    }
    default:
      want = 1;
      break;
  }
  if (node.children.size() != want) {
    return Violation(node, "expected " + std::to_string(want) +
                               " children, has " +
                               std::to_string(node.children.size()));
  }
  return Status::OK();
}

const Schema& InputSchema(const PhysicalNode& node, int i = 0) {
  const PhysicalNode* child = node.children[static_cast<size_t>(i)].get();
  // Enforcers reuse their child's proto; walk down to a payload-bearing
  // node. Every node has a proto in practice.
  return child->proto->schema();
}

Status CheckSchemaWiring(const PhysicalNode& node) {
  switch (node.kind) {
    case PhysicalOpKind::kFilter: {
      const Schema& in = InputSchema(node);
      for (const BoundPredicate& p : node.proto->predicates) {
        if (in.PositionOf(p.lhs) < 0) {
          return Violation(node, "filter lhs column missing from input");
        }
        if (p.rhs_is_column && in.PositionOf(p.rhs) < 0) {
          return Violation(node, "filter rhs column missing from input");
        }
      }
      return Status::OK();
    }
    case PhysicalOpKind::kProject: {
      const Schema& in = InputSchema(node);
      for (const auto& [src, out] : node.proto->project_map) {
        (void)out;
        if (in.PositionOf(src) < 0) {
          return Violation(node, "project source column missing from input");
        }
      }
      return Status::OK();
    }
    case PhysicalOpKind::kCompute: {
      const Schema& in = InputSchema(node);
      for (const ComputeItem& item : node.proto->compute_items) {
        for (ColumnId c : item.expr->ReferencedColumns().ToVector()) {
          if (in.PositionOf(c) < 0) {
            return Violation(node,
                             "compute input column missing from input");
          }
        }
      }
      return Status::OK();
    }
    case PhysicalOpKind::kHashAgg:
    case PhysicalOpKind::kStreamAgg: {
      const Schema& in = InputSchema(node);
      for (ColumnId c : node.proto->group_cols) {
        if (in.PositionOf(c) < 0) {
          return Violation(node, "grouping column missing from input");
        }
      }
      for (const AggregateDesc& a : node.proto->aggregates) {
        if (!a.count_star && in.PositionOf(a.arg) < 0) {
          return Violation(node, "aggregate argument missing from input");
        }
      }
      return Status::OK();
    }
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin: {
      const Schema& l = InputSchema(node, 0);
      const Schema& r = InputSchema(node, 1);
      for (const auto& [lk, rk] : node.proto->join_keys) {
        if (l.PositionOf(lk) < 0) {
          return Violation(node, "left join key missing from left input");
        }
        if (r.PositionOf(rk) < 0) {
          return Violation(node, "right join key missing from right input");
        }
      }
      return Status::OK();
    }
    case PhysicalOpKind::kSort: {
      const Schema& in = InputSchema(node);
      for (ColumnId c : node.sort_spec.cols) {
        if (in.PositionOf(c) < 0) {
          return Violation(node, "sort column missing from input");
        }
      }
      if (node.sort_spec.Empty()) {
        return Violation(node, "Sort enforcer without a sort spec");
      }
      return Status::OK();
    }
    case PhysicalOpKind::kHashExchange:
    case PhysicalOpKind::kMergeExchange:
    case PhysicalOpKind::kRangeExchange: {
      const Schema& in = InputSchema(node);
      if (node.exchange_cols.Empty()) {
        return Violation(node, "exchange without partitioning columns");
      }
      for (ColumnId c : node.exchange_cols.ToVector()) {
        if (in.PositionOf(c) < 0) {
          return Violation(node, "exchange column missing from input");
        }
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Status CheckAggregatePlacement(const PhysicalNode& node) {
  if (node.kind != PhysicalOpKind::kHashAgg &&
      node.kind != PhysicalOpKind::kStreamAgg) {
    return Status::OK();
  }
  // Local (partial) aggregates are placement-agnostic.
  if (node.proto->kind() == LogicalOpKind::kLocalGbAgg) return Status::OK();
  const Partitioning& in = node.children[0]->delivered.partitioning;
  if (node.proto->group_cols.empty()) {
    if (in.kind != PartitioningKind::kSerial) {
      return Violation(node, "grand-total aggregate over non-serial input");
    }
    return Status::OK();
  }
  PartitioningReq req = PartitioningReq::SubsetOf(
      ColumnSet::FromVector(node.proto->group_cols));
  if (!req.SatisfiedBy(in)) {
    return Violation(node,
                     "input not partitioned within the grouping columns");
  }
  return Status::OK();
}

Status CheckSortPlacement(const PhysicalNode& node) {
  if (node.kind == PhysicalOpKind::kStreamAgg) {
    if (!node.children[0]->delivered.sort.SatisfiesPrefix(node.sort_spec)) {
      return Violation(node, "stream aggregate input not sorted on order");
    }
  }
  if (node.kind == PhysicalOpKind::kMergeJoin) {
    // Left input sorted on this node's delivered order; right on the
    // aligned key order of the same length.
    const SortSpec& lsort = node.children[0]->delivered.sort;
    if (!lsort.SatisfiesPrefix(node.delivered.sort)) {
      return Violation(node, "merge join left input not sorted");
    }
    if (node.children[1]->delivered.sort.cols.size() <
        node.proto->join_keys.size()) {
      return Violation(node, "merge join right input not sorted on keys");
    }
  }
  return Status::OK();
}

Status CheckJoinCoPartitioning(const PhysicalNode& node) {
  if (node.kind != PhysicalOpKind::kHashJoin &&
      node.kind != PhysicalOpKind::kMergeJoin) {
    return Status::OK();
  }
  // A replicated build side co-locates with any probe placement.
  if (node.children[1]->kind == PhysicalOpKind::kBroadcastExchange) {
    return Status::OK();
  }
  const Partitioning& l = node.children[0]->delivered.partitioning;
  const Partitioning& r = node.children[1]->delivered.partitioning;
  if (l.kind == PartitioningKind::kSerial &&
      r.kind == PartitioningKind::kSerial) {
    return Status::OK();
  }
  if (l.kind != PartitioningKind::kHash ||
      r.kind != PartitioningKind::kHash) {
    return Violation(node, "join inputs not co-partitioned");
  }
  ColumnSet lkeys, rkeys;
  for (const auto& [lk, rk] : node.proto->join_keys) {
    lkeys.Insert(lk);
    rkeys.Insert(rk);
  }
  if (!l.cols.IsSubsetOf(lkeys) || !r.cols.IsSubsetOf(rkeys) ||
      l.cols.Size() != r.cols.Size()) {
    return Violation(node, "join partitionings not aligned key subsets");
  }
  // Positional alignment: the partitioned-on key positions must match.
  for (const auto& [lk, rk] : node.proto->join_keys) {
    if (l.cols.Contains(lk) != r.cols.Contains(rk)) {
      return Violation(node, "join partitionings use misaligned positions");
    }
  }
  return Status::OK();
}

Status CheckOrderedOutput(const PhysicalNode& node) {
  if (node.kind != PhysicalOpKind::kOutput) return Status::OK();
  if (node.proto->order_by.empty()) return Status::OK();
  const DeliveredProps& in = node.children[0]->delivered;
  if (!in.sort.SatisfiesPrefix(SortSpec{node.proto->order_by})) {
    return Violation(node, "ordered output over unsorted input");
  }
  // Globally ordered: either one partition, or range partitioning whose
  // key order is a prefix of the sort order.
  if (in.partitioning.kind == PartitioningKind::kSerial) return Status::OK();
  if (in.partitioning.kind == PartitioningKind::kRange) {
    const auto& rc = in.partitioning.range_cols;
    if (rc.size() <= in.sort.cols.size() &&
        std::equal(rc.begin(), rc.end(), in.sort.cols.begin())) {
      return Status::OK();
    }
  }
  return Violation(node, "ordered output not globally ordered");
}

Status CheckSpool(const PhysicalNode& node) {
  if (node.kind != PhysicalOpKind::kSpool) return Status::OK();
  if (!(node.delivered == node.children[0]->delivered)) {
    return Violation(node, "spool must pass its child's properties through");
  }
  return Status::OK();
}

Status ValidateNode(const PhysicalNode& node) {
  // SpoolScan is a legacy placeholder: shared spools appear once in the
  // plan DAG, so a scan-side node has nothing to scan. The executor has no
  // implementation for it; reject before execution.
  if (node.kind == PhysicalOpKind::kSpoolScan) {
    return Violation(node, "SpoolScan must not appear in executable plans");
  }
  SCX_RETURN_IF_ERROR(CheckArity(node));
  if (node.kind != PhysicalOpKind::kSequence &&
      node.kind != PhysicalOpKind::kExtract && node.proto == nullptr) {
    return Violation(node, "missing operator payload");
  }
  SCX_RETURN_IF_ERROR(CheckSchemaWiring(node));
  SCX_RETURN_IF_ERROR(CheckAggregatePlacement(node));
  SCX_RETURN_IF_ERROR(CheckSortPlacement(node));
  SCX_RETURN_IF_ERROR(CheckJoinCoPartitioning(node));
  SCX_RETURN_IF_ERROR(CheckOrderedOutput(node));
  SCX_RETURN_IF_ERROR(CheckSpool(node));
  return Status::OK();
}

Status ValidateRec(const PhysicalNodePtr& node,
                   std::set<const PhysicalNode*>* seen) {
  if (!seen->insert(node.get()).second) return Status::OK();
  for (const PhysicalNodePtr& c : node->children) {
    SCX_RETURN_IF_ERROR(ValidateRec(c, seen));
  }
  return ValidateNode(*node);
}

}  // namespace

Status ValidatePlan(const PhysicalNodePtr& root) {
  if (root == nullptr) return Status::Internal("null plan");
  std::set<const PhysicalNode*> seen;
  return ValidateRec(root, &seen);
}

}  // namespace scx
