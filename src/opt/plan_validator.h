#ifndef SCX_OPT_PLAN_VALIDATOR_H_
#define SCX_OPT_PLAN_VALIDATOR_H_

#include "common/status.h"
#include "opt/physical_plan.h"

namespace scx {

/// Structural and physical-property invariants every plan the optimizer
/// emits must satisfy. Used by tests and (optionally) by the Engine as a
/// safety net before execution. A violation indicates an optimizer bug —
/// exactly the class of bug (mis-reasoned partitioning) that silently
/// produces wrong distributed results.
///
/// Checked invariants:
///  * operator arity (children count per kind);
///  * schema wiring: columns an operator references exist in its children's
///    schemas; project sources exist; join keys resolve left/right;
///  * aggregation inputs are partitioned within the grouping columns
///    (serial for grand totals); local aggregates are exempt;
///  * stream aggregates' inputs deliver the aggregate's chosen order;
///  * merge joins' inputs are sorted on the aligned key order;
///  * joins' inputs are co-partitioned (aligned subsets, equal sizes, or
///    both serial);
///  * every node's delivered sort is consistent with what its operator can
///    actually guarantee given its children;
///  * spools have exactly one child and pass its properties through;
///  * no SpoolScan nodes: shared spools appear once in the plan DAG, so the
///    scan-side placeholder is dead and the executor rejects it up front;
///  * enforcers carry their payloads (exchange columns / sort specs).
Status ValidatePlan(const PhysicalNodePtr& root);

}  // namespace scx

#endif  // SCX_OPT_PLAN_VALIDATOR_H_
