#ifndef SCX_OPT_PLAN_JSON_H_
#define SCX_OPT_PLAN_JSON_H_

#include <string>

#include "opt/physical_plan.h"

namespace scx {

struct OptimizeDiagnostics;

/// Serializes a physical plan DAG to JSON. Shared nodes (spools referenced
/// by several consumers) are emitted once in a flat `nodes` array and
/// referenced by id from `children`, so the sharing structure survives:
///
///   {"root": 0,
///    "nodes": [{"id":0,"kind":"Sequence","cost":0,"children":[1,7],...},
///              ...]}
std::string PlanToJson(const PhysicalNodePtr& root);

/// Serializes optimizer diagnostics (costs, shared groups, LCAs, rounds,
/// trace) to JSON.
std::string DiagnosticsToJson(const OptimizeDiagnostics& diagnostics);

}  // namespace scx

#endif  // SCX_OPT_PLAN_JSON_H_
