#ifndef SCX_OPT_PHYSICAL_PLAN_H_
#define SCX_OPT_PHYSICAL_PLAN_H_

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "memo/memo.h"
#include "props/physical_props.h"

namespace scx {

/// Physical operator kinds. Aggregation kinds pair with the proto logical
/// node's kind (kGbAgg = full, kLocalGbAgg = partial, kGlobalGbAgg = merge).
enum class PhysicalOpKind {
  kExtract,
  kFilter,
  kProject,
  kCompute,
  kHashAgg,
  kStreamAgg,
  kHashJoin,
  kMergeJoin,
  kUnionAll,
  kSpool,
  kSpoolScan,  ///< per-consumer read of a materialized spool
  kOutput,
  kSequence,
  // Enforcers:
  kHashExchange,      ///< hash repartition on `exchange_cols`
  kMergeExchange,     ///< order-preserving repartition on `exchange_cols`
  kRangeExchange,     ///< range repartition on the delivered `range_cols`
  kBroadcastExchange, ///< replicate the (small) input to every machine;
                      ///< only appears as the build side of a hash join
  kGather,         ///< merge everything into a single partition
  kSort,           ///< per-partition sort on `sort_spec`
};

const char* PhysicalOpKindName(PhysicalOpKind kind);

class PhysicalNode;
using PhysicalNodePtr = std::shared_ptr<PhysicalNode>;

/// A node of a physical plan. Plans are DAGs: a shared spool winner appears
/// once and is referenced by each consumer, which is exactly what makes the
/// deduplicated (DAG) cost lower than the per-consumer (tree) cost.
class PhysicalNode {
 public:
  PhysicalOpKind kind = PhysicalOpKind::kExtract;
  /// Operator payload (logical prototype); enforcers reuse the child's.
  LogicalNodePtr proto;
  /// Memo group this plan node was produced for.
  GroupId group = kInvalidGroup;
  std::vector<PhysicalNodePtr> children;
  DeliveredProps delivered;
  /// Cost of this operator alone.
  double own_cost = 0;
  /// own_cost + sum of children's tree_cost (re-executes shared subtrees —
  /// the conventional optimizer's accounting, paper Fig. 8(a)).
  double tree_cost = 0;
  /// Precomputed lower bound on DagCost: own_cost + the largest child
  /// cost_lb. Valid by induction — DagCost(n) >= n->own_cost +
  /// DagCost(child) >= n->own_cost + child->cost_lb for every child — and
  /// a pure function of the node, so bound-based pruning decisions are
  /// deterministic. Unlike dag_cost_memo it never triggers a DAG walk,
  /// which keeps candidate screening O(children) even for fresh enforcer
  /// and spool intermediates that are considered once and discarded.
  double cost_lb = 0;

  /// Enforcer payloads.
  ColumnSet exchange_cols;  ///< kHashExchange / kMergeExchange
  SortSpec sort_spec;       ///< kSort, and the order chosen by stream aggs
  /// Marginal cost charged per additional consumer of a spool.
  double extra_consumer_cost = 0;

  /// Memoized DagCost of the sub-DAG rooted here; NaN until the first
  /// DagCost call. Sub-DAGs are immutable once built, so the value is a
  /// pure function of the node: concurrent phase-2 workers may race to
  /// store it, but every writer stores the identical double, so relaxed
  /// ordering is enough. Also serves as an O(children) lower bound for
  /// fresh parent candidates (DagCost(parent) >= parent->own_cost +
  /// DagCost(child) for every child).
  std::atomic<double> dag_cost_memo{std::numeric_limits<double>::quiet_NaN()};

  /// One-line description for plan printing.
  std::string Describe() const;
};

/// Builds a physical node and fills in `tree_cost`.
PhysicalNodePtr MakePhysicalNode(PhysicalOpKind kind, LogicalNodePtr proto,
                                 GroupId group,
                                 std::vector<PhysicalNodePtr> children,
                                 DeliveredProps delivered, double own_cost);

/// Cost with shared subplans counted once per distinct node (plus the
/// marginal per-extra-consumer cost of spools). This is the objective the
/// CSE-extended optimizer reports.
double DagCost(const PhysicalNodePtr& root);

/// Cost with shared subplans re-counted per consuming path (conventional
/// accounting; equals DagCost when the plan is a tree).
double TreeCost(const PhysicalNodePtr& root);

/// Number of distinct operator nodes in the plan DAG.
int CountDagNodes(const PhysicalNodePtr& root);

/// Pretty-prints a plan; shared nodes print once and are referenced by
/// `@<id>` afterwards.
std::string PrintPhysicalPlan(const PhysicalNodePtr& root);

}  // namespace scx

#endif  // SCX_OPT_PHYSICAL_PLAN_H_
