#ifndef SCX_PLAN_EXPR_H_
#define SCX_PLAN_EXPR_H_

#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/schema.h"
#include "common/value.h"
#include "script/ast.h"

namespace scx {

/// A bound atomic predicate over plan-wide column ids:
/// `#lhs op (#rhs | literal)`.
struct BoundPredicate {
  ColumnId lhs = 0;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_column = false;
  ColumnId rhs = 0;
  Value literal;

  /// Columns referenced by the predicate.
  ColumnSet ReferencedColumns() const;

  /// Evaluates the predicate on `row` positionally aligned with `schema`.
  bool Evaluate(const Row& row, const Schema& schema) const;

  /// Stable structural hash (used by expression fingerprints).
  uint64_t Hash() const;

  std::string ToString(const Schema& schema) const;

  friend bool operator==(const BoundPredicate& a, const BoundPredicate& b);
};

/// A bound aggregate computation inside a group-by.
struct AggregateDesc {
  AggFn fn = AggFn::kSum;
  bool count_star = false;
  ColumnId arg = 0;   ///< input column (unused when count_star)
  ColumnId out = 0;   ///< output column id (fresh)
  /// For AVG split into local/global phases: id of the hidden partial-count
  /// column emitted by the local phase. 0 when unused.
  ColumnId hidden_count = 0;
  DataType out_type = DataType::kInt64;
  std::string out_name;

  uint64_t Hash() const;
  std::string ToString() const;

  friend bool operator==(const AggregateDesc& a, const AggregateDesc& b);
};

}  // namespace scx

#endif  // SCX_PLAN_EXPR_H_
