#ifndef SCX_PLAN_SCALAR_H_
#define SCX_PLAN_SCALAR_H_

#include <map>
#include <memory>
#include <string>

#include "common/column_set.h"
#include "common/schema.h"
#include "common/value.h"

namespace scx {

class ScalarExpr;
using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// An immutable bound scalar expression tree: column references, literals,
/// and arithmetic. Used by Compute operators (computed SELECT items) and as
/// pre-computed aggregate arguments.
class ScalarExpr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary };
  enum class BinOp { kAdd, kSub, kMul, kDiv };

  static ScalarExprPtr Column(ColumnId id);
  static ScalarExprPtr Literal(Value value);
  static ScalarExprPtr Binary(BinOp op, ScalarExprPtr lhs, ScalarExprPtr rhs);

  Kind kind() const { return kind_; }
  ColumnId column() const { return column_; }
  const Value& literal() const { return literal_; }
  BinOp op() const { return op_; }
  const ScalarExprPtr& lhs() const { return lhs_; }
  const ScalarExprPtr& rhs() const { return rhs_; }

  /// True iff the expression is a bare column reference.
  bool IsBareColumn() const { return kind_ == Kind::kColumn; }

  /// Evaluates on a row positionally aligned with `schema`. Division always
  /// produces a double; other operators produce int64 when both operands
  /// are int64, double otherwise.
  Value Evaluate(const Row& row, const Schema& schema) const;

  /// Static result type given a column-type resolver.
  DataType ResultType(
      const std::function<DataType(ColumnId)>& type_of) const;

  /// All referenced columns.
  ColumnSet ReferencedColumns() const;

  /// Structural hash (column ids included).
  uint64_t Hash() const;

  /// Structural equality with `other`, translating other's column ids
  /// through `other_to_this` (identity for missing entries). Used by the
  /// CSE equivalence comparison.
  bool EqualsMapped(const ScalarExpr& other,
                    const std::map<ColumnId, ColumnId>& other_to_this) const;

  /// Returns this expression with column ids rewritten through `remap`
  /// (shares unaffected subtrees).
  ScalarExprPtr Remap(const std::map<ColumnId, ColumnId>& remap) const;

  std::string ToString(
      const std::function<std::string(ColumnId)>& namer) const;

 private:
  ScalarExpr() = default;

  Kind kind_ = Kind::kLiteral;
  ColumnId column_ = 0;
  Value literal_;
  BinOp op_ = BinOp::kAdd;
  ScalarExprPtr lhs_;
  ScalarExprPtr rhs_;
};

const char* BinOpName(ScalarExpr::BinOp op);

/// One output of a Compute operator.
struct ComputeItem {
  ScalarExprPtr expr;
  ColumnId out = 0;
  std::string out_name;

  /// True when the item just forwards a column (expr is that bare column
  /// and keeps its id) — such items preserve physical properties.
  bool IsPassthrough() const {
    return expr != nullptr && expr->IsBareColumn() && expr->column() == out;
  }
};

}  // namespace scx

#endif  // SCX_PLAN_SCALAR_H_
