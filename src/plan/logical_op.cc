#include "plan/logical_op.h"

#include <map>
#include <set>

namespace scx {

const char* LogicalOpKindName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kExtract:
      return "Extract";
    case LogicalOpKind::kFilter:
      return "Filter";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kCompute:
      return "Compute";
    case LogicalOpKind::kGbAgg:
      return "GbAgg";
    case LogicalOpKind::kLocalGbAgg:
      return "LocalGbAgg";
    case LogicalOpKind::kGlobalGbAgg:
      return "GlobalGbAgg";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kSpool:
      return "Spool";
    case LogicalOpKind::kOutput:
      return "Output";
    case LogicalOpKind::kSequence:
      return "Sequence";
  }
  return "Unknown";
}

uint64_t LogicalOpId(LogicalOpKind kind) {
  // Arbitrary fixed identifiers; must be stable across runs, distinct per
  // operator kind, and shared by all instances of a kind (paper Def. 1).
  return 0xA100 + static_cast<uint64_t>(kind) * 0x9137;
}

std::string LogicalNode::Describe() const {
  std::string out = LogicalOpKindName(kind_);
  auto namer = [this](ColumnId id) { return schema_.NameOf(id); };
  switch (kind_) {
    case LogicalOpKind::kExtract:
      out += "[" + file.path + "]";
      break;
    case LogicalOpKind::kFilter: {
      out += "[";
      for (size_t i = 0; i < predicates.size(); ++i) {
        if (i > 0) out += " AND ";
        out += predicates[i].ToString(child(0)->schema());
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kProject: {
      out += "[";
      for (size_t i = 0; i < project_map.size(); ++i) {
        if (i > 0) out += ",";
        out += namer(project_map[i].second);
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kCompute: {
      out += "[";
      for (size_t i = 0; i < compute_items.size(); ++i) {
        if (i > 0) out += ",";
        const ComputeItem& item = compute_items[i];
        if (item.IsPassthrough()) {
          out += namer(item.out);
        } else {
          out += item.expr->ToString(namer) + "->" + item.out_name;
        }
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kGbAgg:
    case LogicalOpKind::kLocalGbAgg:
    case LogicalOpKind::kGlobalGbAgg: {
      out += "[" + ColumnSet::FromVector(group_cols).ToString(namer) + "; ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ",";
        out += aggregates[i].ToString();
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kJoin: {
      out += "[";
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i > 0) out += " AND ";
        out += child(0)->schema().NameOf(join_keys[i].first);
        out += "=";
        out += child(1)->schema().NameOf(join_keys[i].second);
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kOutput:
      out += "[" + output_path + "]";
      break;
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kSpool:
    case LogicalOpKind::kSequence:
      break;
  }
  if (!result_name.empty()) {
    out += " (" + result_name + ")";
  }
  return out;
}

namespace {

void CollectTopological(const LogicalNodePtr& node,
                        std::set<const LogicalNode*>* seen,
                        std::vector<LogicalNodePtr>* out) {
  if (!seen->insert(node.get()).second) return;
  for (const LogicalNodePtr& child : node->children()) {
    CollectTopological(child, seen, out);
  }
  out->push_back(node);
}

void PrintNode(const LogicalNodePtr& node, int indent,
               std::map<const LogicalNode*, int>* ids, int* next_id,
               std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  auto it = ids->find(node.get());
  if (it != ids->end()) {
    *out += "@" + std::to_string(it->second) + " (shared, see above)\n";
    return;
  }
  int id = (*next_id)++;
  (*ids)[node.get()] = id;
  *out += "@" + std::to_string(id) + " " + node->Describe() + "\n";
  for (const LogicalNodePtr& child : node->children()) {
    PrintNode(child, indent + 1, ids, next_id, out);
  }
}

}  // namespace

std::vector<LogicalNodePtr> TopologicalNodes(const LogicalNodePtr& root) {
  std::vector<LogicalNodePtr> out;
  std::set<const LogicalNode*> seen;
  CollectTopological(root, &seen, &out);
  return out;
}

std::string PrintLogicalDag(const LogicalNodePtr& root) {
  std::string out;
  std::map<const LogicalNode*, int> ids;
  int next_id = 1;
  PrintNode(root, 0, &ids, &next_id, &out);
  return out;
}

}  // namespace scx
