#ifndef SCX_PLAN_EXPR_CSE_H_
#define SCX_PLAN_EXPR_CSE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "plan/expr.h"
#include "plan/scalar.h"

namespace scx {

/// One step of a stage's shared-slot evaluation schedule. Steps are in
/// dependency order (operands always precede their users), so a batch
/// evaluator runs them top to bottom, each step producing one column.
struct ExprStep {
  ScalarExpr::Kind kind = ScalarExpr::Kind::kLiteral;
  ColumnId column = 0;  ///< kColumn: input column to load
  Value literal;        ///< kLiteral: constant to splat
  ScalarExpr::BinOp op = ScalarExpr::BinOp::kAdd;
  int lhs = -1;  ///< kBinary: operand step indices
  int rhs = -1;
};

/// The expression-level CSE result for one Compute stage: structurally
/// equal ScalarExpr subtrees across all of the stage's items collapse to a
/// single step, evaluated once per batch and referenced thereafter — the
/// expression-granularity analogue of the optimizer's shared sub-DAG
/// spools (and of DuckDB's CommonSubExpressionOptimizer).
struct ExprSchedule {
  std::vector<ExprStep> steps;
  /// Step producing each compute item's output, aligned with the items.
  std::vector<int> item_steps;
  /// Structurally duplicate binary subtrees eliminated (memo hits); the
  /// executor surfaces this as ExecMetrics::exprs_deduped.
  int64_t duplicates_eliminated = 0;

  bool HasSharing() const { return duplicates_eliminated > 0; }
};

/// Canonicalizes and deduplicates the items' expression trees into a
/// shared-slot schedule. Value numbering uses the fingerprint hashing idiom
/// (structural hash + full equality check per bucket, so hash collisions
/// can never merge distinct subtrees). Commutative operators (+, *) are
/// canonicalized by ordering their operand steps, which is bit-exact for
/// IEEE-754 add/mul and two's-complement int wraparound, so `B*A` shares
/// `A*B`'s step without changing a single output bit.
ExprSchedule BuildExprSchedule(const std::vector<ComputeItem>& items);

// ---------------------------------------------------------------------------
// Cross-stage pipeline schedules.
//
// A maximal Filter/Compute/Project chain of the physical plan lowers into
// ONE value-numbered step dag shared by every stage: a later Compute's
// reference to an earlier stage's output column resolves to that stage's
// step (not a fresh column load), so structurally equal subtrees dedupe
// across stage boundaries exactly as they do within one stage, and a
// filter's predicates read computed columns directly — sharing between a
// stage's predicates and the items that feed them without materializing a
// single row.

/// One filter predicate resolved into the step dag: `step(lhs) op
/// (step(rhs) | literal)`. rhs < 0 selects the literal side.
struct PredStep {
  CompareOp op = CompareOp::kEq;
  int lhs = -1;
  int rhs = -1;
  Value literal;
};

/// One stage of a fused operator chain, in execution (bottom-up) order.
/// Filter stages narrow the live selection; compute/project stages reshape
/// the visible schema to `out_steps` and evaluate `eval_steps` (the steps
/// first needed here, dependency-ordered) densely over the live rows.
struct PipelineStage {
  bool is_filter = false;
  std::vector<PredStep> preds;  ///< filter stages
  /// Steps first interned while lowering this stage, dependency order.
  /// kColumn entries are bound from the chain input, not evaluated.
  std::vector<int> eval_steps;
  /// The stage's output schema columns (schema order); compute/project.
  std::vector<int> out_steps;
  /// True when any eval step actually computes (kLiteral/kBinary) — the
  /// executor compacts the live rows before such a stage so expressions are
  /// only ever evaluated on rows the row-at-a-time path evaluates them on.
  bool has_eval = false;
};

/// Sentinel last_use for steps feeding the chain's final output columns.
inline constexpr int kPipelineOutputUse = 1 << 30;

/// A fused schedule for one maximal Filter/Compute/Project chain.
struct PipelineSchedule {
  std::vector<ExprStep> steps;  ///< global value-numbered step dag
  std::vector<PipelineStage> stages;
  /// Per step: the largest stage index that reads the step's column
  /// (kPipelineOutputUse when the chain output does). A compaction at
  /// stage s drops materialized steps with last_use < s.
  std::vector<int> last_use;
  /// The chain's output schema columns — the last reshaping stage's
  /// out_steps. Empty iff the chain is filters only (output = chain input
  /// columns under the final selection).
  std::vector<int> output_steps;
  bool reshaped = false;  ///< any compute/project stage present
  /// Structurally duplicate binary subtrees eliminated, across all stages.
  int64_t duplicates_eliminated = 0;
};

/// One chain stage's payload, in execution (bottom-up) order. Exactly one
/// of the three pointers is set.
struct PipelineStageDesc {
  const std::vector<BoundPredicate>* predicates = nullptr;  ///< kFilter
  const std::vector<ComputeItem>* items = nullptr;          ///< kCompute
  /// kProject: (src, dst) column pairs in output-schema order.
  const std::vector<std::pair<ColumnId, ColumnId>>* project = nullptr;
};

/// Lowers a chain into a fused schedule. Column references resolve through
/// a per-stage scope (stage outputs shadow chain inputs), so only chain
/// *input* columns become kColumn steps; everything else shares the
/// producing step. Commutative canonicalization and the fingerprint-idiom
/// value numbering are BuildExprSchedule's, applied chain-wide.
PipelineSchedule BuildPipelineSchedule(
    const std::vector<PipelineStageDesc>& stage_descs);

}  // namespace scx

#endif  // SCX_PLAN_EXPR_CSE_H_
