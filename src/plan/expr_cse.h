#ifndef SCX_PLAN_EXPR_CSE_H_
#define SCX_PLAN_EXPR_CSE_H_

#include <cstdint>
#include <vector>

#include "plan/scalar.h"

namespace scx {

/// One step of a stage's shared-slot evaluation schedule. Steps are in
/// dependency order (operands always precede their users), so a batch
/// evaluator runs them top to bottom, each step producing one column.
struct ExprStep {
  ScalarExpr::Kind kind = ScalarExpr::Kind::kLiteral;
  ColumnId column = 0;  ///< kColumn: input column to load
  Value literal;        ///< kLiteral: constant to splat
  ScalarExpr::BinOp op = ScalarExpr::BinOp::kAdd;
  int lhs = -1;  ///< kBinary: operand step indices
  int rhs = -1;
};

/// The expression-level CSE result for one Compute stage: structurally
/// equal ScalarExpr subtrees across all of the stage's items collapse to a
/// single step, evaluated once per batch and referenced thereafter — the
/// expression-granularity analogue of the optimizer's shared sub-DAG
/// spools (and of DuckDB's CommonSubExpressionOptimizer).
struct ExprSchedule {
  std::vector<ExprStep> steps;
  /// Step producing each compute item's output, aligned with the items.
  std::vector<int> item_steps;
  /// Structurally duplicate binary subtrees eliminated (memo hits); the
  /// executor surfaces this as ExecMetrics::exprs_deduped.
  int64_t duplicates_eliminated = 0;

  bool HasSharing() const { return duplicates_eliminated > 0; }
};

/// Canonicalizes and deduplicates the items' expression trees into a
/// shared-slot schedule. Value numbering uses the fingerprint hashing idiom
/// (structural hash + full equality check per bucket, so hash collisions
/// can never merge distinct subtrees). Commutative operators (+, *) are
/// canonicalized by ordering their operand steps, which is bit-exact for
/// IEEE-754 add/mul and two's-complement int wraparound, so `B*A` shares
/// `A*B`'s step without changing a single output bit.
ExprSchedule BuildExprSchedule(const std::vector<ComputeItem>& items);

}  // namespace scx

#endif  // SCX_PLAN_EXPR_CSE_H_
