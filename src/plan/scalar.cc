#include "plan/scalar.h"

#include "common/hash.h"

namespace scx {

const char* BinOpName(ScalarExpr::BinOp op) {
  switch (op) {
    case ScalarExpr::BinOp::kAdd:
      return "+";
    case ScalarExpr::BinOp::kSub:
      return "-";
    case ScalarExpr::BinOp::kMul:
      return "*";
    case ScalarExpr::BinOp::kDiv:
      return "/";
  }
  return "?";
}

ScalarExprPtr ScalarExpr::Column(ColumnId id) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kColumn;
  e->column_ = id;
  return e;
}

ScalarExprPtr ScalarExpr::Literal(Value value) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ScalarExprPtr ScalarExpr::Binary(BinOp op, ScalarExprPtr lhs,
                                 ScalarExprPtr rhs) {
  auto e = std::shared_ptr<ScalarExpr>(new ScalarExpr());
  e->kind_ = Kind::kBinary;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Value ScalarExpr::Evaluate(const Row& row, const Schema& schema) const {
  switch (kind_) {
    case Kind::kColumn:
      return row[static_cast<size_t>(schema.PositionOf(column_))];
    case Kind::kLiteral:
      return literal_;
    case Kind::kBinary: {
      Value l = lhs_->Evaluate(row, schema);
      Value r = rhs_->Evaluate(row, schema);
      if (op_ == BinOp::kDiv) {
        double d = r.AsNumeric();
        return Value::Real(d == 0 ? 0.0 : l.AsNumeric() / d);
      }
      if (l.is_int() && r.is_int()) {
        int64_t a = l.as_int(), b = r.as_int();
        switch (op_) {
          case BinOp::kAdd:
            return Value::Int(a + b);
          case BinOp::kSub:
            return Value::Int(a - b);
          case BinOp::kMul:
            return Value::Int(a * b);
          case BinOp::kDiv:
            break;  // handled above
        }
      }
      double a = l.AsNumeric(), b = r.AsNumeric();
      switch (op_) {
        case BinOp::kAdd:
          return Value::Real(a + b);
        case BinOp::kSub:
          return Value::Real(a - b);
        case BinOp::kMul:
          return Value::Real(a * b);
        case BinOp::kDiv:
          break;
      }
      return Value::Real(0);
    }
  }
  return Value::Int(0);
}

DataType ScalarExpr::ResultType(
    const std::function<DataType(ColumnId)>& type_of) const {
  switch (kind_) {
    case Kind::kColumn:
      return type_of(column_);
    case Kind::kLiteral:
      return literal_.type();
    case Kind::kBinary: {
      if (op_ == BinOp::kDiv) return DataType::kDouble;
      DataType l = lhs_->ResultType(type_of);
      DataType r = rhs_->ResultType(type_of);
      if (l == DataType::kInt64 && r == DataType::kInt64) {
        return DataType::kInt64;
      }
      return DataType::kDouble;
    }
  }
  return DataType::kInt64;
}

ColumnSet ScalarExpr::ReferencedColumns() const {
  switch (kind_) {
    case Kind::kColumn:
      return ColumnSet::Of({column_});
    case Kind::kLiteral:
      return {};
    case Kind::kBinary:
      return lhs_->ReferencedColumns().Union(rhs_->ReferencedColumns());
  }
  return {};
}

uint64_t ScalarExpr::Hash() const {
  switch (kind_) {
    case Kind::kColumn:
      return HashCombine(0x6c01, column_);
    case Kind::kLiteral:
      return HashCombine(0x6c02, literal_.Hash());
    case Kind::kBinary:
      return HashCombine(
          HashCombine(0x6c03, static_cast<uint64_t>(op_)),
          HashCombine(lhs_->Hash(), rhs_->Hash()));
  }
  return 0;
}

bool ScalarExpr::EqualsMapped(
    const ScalarExpr& other,
    const std::map<ColumnId, ColumnId>& other_to_this) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kColumn: {
      auto it = other_to_this.find(other.column_);
      ColumnId mapped = it == other_to_this.end() ? other.column_ : it->second;
      return column_ == mapped;
    }
    case Kind::kLiteral:
      return literal_ == other.literal_;
    case Kind::kBinary:
      return op_ == other.op_ &&
             lhs_->EqualsMapped(*other.lhs_, other_to_this) &&
             rhs_->EqualsMapped(*other.rhs_, other_to_this);
  }
  return false;
}

ScalarExprPtr ScalarExpr::Remap(
    const std::map<ColumnId, ColumnId>& remap) const {
  switch (kind_) {
    case Kind::kColumn: {
      auto it = remap.find(column_);
      if (it == remap.end()) return Column(column_);
      return Column(it->second);
    }
    case Kind::kLiteral:
      return Literal(literal_);
    case Kind::kBinary:
      return Binary(op_, lhs_->Remap(remap), rhs_->Remap(remap));
  }
  return nullptr;
}

std::string ScalarExpr::ToString(
    const std::function<std::string(ColumnId)>& namer) const {
  switch (kind_) {
    case Kind::kColumn:
      return namer(column_);
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kBinary:
      return "(" + lhs_->ToString(namer) + BinOpName(op_) +
             rhs_->ToString(namer) + ")";
  }
  return "?";
}

}  // namespace scx
