#ifndef SCX_PLAN_BINDER_H_
#define SCX_PLAN_BINDER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/column_registry.h"
#include "plan/logical_op.h"
#include "script/ast.h"

namespace scx {

/// A fully bound script: a rooted logical operator DAG plus the column
/// registry describing every column id minted during binding.
struct BoundScript {
  LogicalNodePtr root;
  /// Named intermediate results, in definition order.
  std::map<std::string, LogicalNodePtr> results;
  ColumnRegistryPtr columns;
};

/// Binds a parsed script against `catalog`, producing the logical operator
/// DAG. A named result referenced by several consumers becomes a single node
/// with multiple parents — the paper's "explicitly given" common
/// subexpressions. Multiple OUTPUT statements are connected by a Sequence
/// node (one OUTPUT needs none).
Result<BoundScript> BindScript(const AstScript& ast, const Catalog& catalog);

/// As above, but mints column ids from the caller-supplied registry — the
/// building block of batch binding, where every script in a batch must draw
/// from one id space so their DAGs can share a single memo.
Result<BoundScript> BindScript(const AstScript& ast, const Catalog& catalog,
                               ColumnRegistryPtr columns);

/// A batch of scripts bound into one merged multi-root DAG. The per-script
/// roots hang under a shared Sequence root (`merged.root`), and every output
/// path carries per-script provenance so the merged execution's sinks can be
/// demultiplexed back to the submitting scripts.
struct BoundBatch {
  /// The merged DAG: one Sequence over the per-script roots (a single-script
  /// batch is passed through untouched — no wrapper, no tagging).
  BoundScript merged;
  /// Root of each script's own sub-DAG, in submission order.
  std::vector<LogicalNodePtr> script_roots;
  /// Per script: distinct (merged output path, original output path) pairs.
  /// For multi-script batches the merged path is "q<i>::<original>", which
  /// keeps two scripts writing the same path in separate sinks.
  std::vector<std::vector<std::pair<std::string, std::string>>> outputs;
};

/// Binds every script of a batch against `catalog` into one merged DAG
/// sharing a single column registry. Scripts stay semantically independent
/// (names never resolve across scripts); structural sharing between them is
/// discovered later by the optimizer's fingerprint merge, not by binding.
Result<BoundBatch> BindScriptBatch(const std::vector<AstScript>& asts,
                                   const Catalog& catalog);

}  // namespace scx

#endif  // SCX_PLAN_BINDER_H_
