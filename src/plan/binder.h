#ifndef SCX_PLAN_BINDER_H_
#define SCX_PLAN_BINDER_H_

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/column_registry.h"
#include "plan/logical_op.h"
#include "script/ast.h"

namespace scx {

/// A fully bound script: a rooted logical operator DAG plus the column
/// registry describing every column id minted during binding.
struct BoundScript {
  LogicalNodePtr root;
  /// Named intermediate results, in definition order.
  std::map<std::string, LogicalNodePtr> results;
  ColumnRegistryPtr columns;
};

/// Binds a parsed script against `catalog`, producing the logical operator
/// DAG. A named result referenced by several consumers becomes a single node
/// with multiple parents — the paper's "explicitly given" common
/// subexpressions. Multiple OUTPUT statements are connected by a Sequence
/// node (one OUTPUT needs none).
Result<BoundScript> BindScript(const AstScript& ast, const Catalog& catalog);

}  // namespace scx

#endif  // SCX_PLAN_BINDER_H_
