#include "plan/expr_cse.h"

#include <unordered_map>
#include <utility>

#include "common/hash.h"

namespace scx {

namespace {

/// Value-numbering state: hash buckets of existing step indices, verified
/// by full structural comparison before reuse (the fingerprint idiom).
struct ScheduleBuilder {
  ExprSchedule* out;
  std::unordered_map<uint64_t, std::vector<int>> buckets;

  uint64_t StepHash(const ExprStep& s) const {
    switch (s.kind) {
      case ScalarExpr::Kind::kColumn:
        return HashCombine(0x6c01, s.column);
      case ScalarExpr::Kind::kLiteral:
        return HashCombine(0x6c02, s.literal.Hash());
      case ScalarExpr::Kind::kBinary:
        return HashCombine(
            HashCombine(0x6c03, static_cast<uint64_t>(s.op)),
            HashCombine(static_cast<uint64_t>(s.lhs),
                        static_cast<uint64_t>(s.rhs)));
    }
    return 0;
  }

  bool StepEquals(const ExprStep& a, const ExprStep& b) const {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case ScalarExpr::Kind::kColumn:
        return a.column == b.column;
      case ScalarExpr::Kind::kLiteral:
        return a.literal == b.literal;
      case ScalarExpr::Kind::kBinary:
        return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
    }
    return false;
  }

  /// Interns `step`, returning an existing step index on a structural
  /// match. Operands are already interned, so subtree equality reduces to
  /// operand-index equality — whole-tree dedup in O(1) per node.
  int Intern(ExprStep step, bool count_dedup) {
    uint64_t h = StepHash(step);
    std::vector<int>& bucket = buckets[h];
    for (int idx : bucket) {
      if (StepEquals(out->steps[static_cast<size_t>(idx)], step)) {
        if (count_dedup) ++out->duplicates_eliminated;
        return idx;
      }
    }
    int idx = static_cast<int>(out->steps.size());
    out->steps.push_back(std::move(step));
    bucket.push_back(idx);
    return idx;
  }

  int Lower(const ScalarExpr& e) {
    ExprStep step;
    step.kind = e.kind();
    switch (e.kind()) {
      case ScalarExpr::Kind::kColumn:
        step.column = e.column();
        return Intern(std::move(step), /*count_dedup=*/false);
      case ScalarExpr::Kind::kLiteral:
        step.literal = e.literal();
        return Intern(std::move(step), /*count_dedup=*/false);
      case ScalarExpr::Kind::kBinary: {
        step.op = e.op();
        step.lhs = Lower(*e.lhs());
        step.rhs = Lower(*e.rhs());
        // Canonical operand order for the commutative operators: IEEE-754
        // add/mul and wrapping int arithmetic are operand-order-invariant,
        // so sorting the step indices merges A+B with B+A bit-exactly.
        if ((e.op() == ScalarExpr::BinOp::kAdd ||
             e.op() == ScalarExpr::BinOp::kMul) &&
            step.rhs < step.lhs) {
          std::swap(step.lhs, step.rhs);
        }
        return Intern(std::move(step), /*count_dedup=*/true);
      }
    }
    return Intern(std::move(step), /*count_dedup=*/false);
  }
};

}  // namespace

ExprSchedule BuildExprSchedule(const std::vector<ComputeItem>& items) {
  ExprSchedule sched;
  ScheduleBuilder builder{&sched, {}};
  sched.item_steps.reserve(items.size());
  for (const ComputeItem& item : items) {
    sched.item_steps.push_back(builder.Lower(*item.expr));
  }
  return sched;
}

}  // namespace scx
