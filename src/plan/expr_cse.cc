#include "plan/expr_cse.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/hash.h"

namespace scx {

namespace {

/// Value-numbering state: hash buckets of existing step indices, verified
/// by full structural comparison before reuse (the fingerprint idiom).
struct ScheduleBuilder {
  std::vector<ExprStep>* steps;
  int64_t* duplicates_eliminated;
  std::unordered_map<uint64_t, std::vector<int>> buckets;

  uint64_t StepHash(const ExprStep& s) const {
    switch (s.kind) {
      case ScalarExpr::Kind::kColumn:
        return HashCombine(0x6c01, s.column);
      case ScalarExpr::Kind::kLiteral:
        return HashCombine(0x6c02, s.literal.Hash());
      case ScalarExpr::Kind::kBinary:
        return HashCombine(
            HashCombine(0x6c03, static_cast<uint64_t>(s.op)),
            HashCombine(static_cast<uint64_t>(s.lhs),
                        static_cast<uint64_t>(s.rhs)));
    }
    return 0;
  }

  bool StepEquals(const ExprStep& a, const ExprStep& b) const {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case ScalarExpr::Kind::kColumn:
        return a.column == b.column;
      case ScalarExpr::Kind::kLiteral:
        return a.literal == b.literal;
      case ScalarExpr::Kind::kBinary:
        return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
    }
    return false;
  }

  /// Interns `step`, returning an existing step index on a structural
  /// match. Operands are already interned, so subtree equality reduces to
  /// operand-index equality — whole-tree dedup in O(1) per node.
  int Intern(ExprStep step, bool count_dedup) {
    uint64_t h = StepHash(step);
    std::vector<int>& bucket = buckets[h];
    for (int idx : bucket) {
      if (StepEquals((*steps)[static_cast<size_t>(idx)], step)) {
        if (count_dedup) ++*duplicates_eliminated;
        return idx;
      }
    }
    int idx = static_cast<int>(steps->size());
    steps->push_back(std::move(step));
    bucket.push_back(idx);
    return idx;
  }

  int Lower(const ScalarExpr& e) {
    ExprStep step;
    step.kind = e.kind();
    switch (e.kind()) {
      case ScalarExpr::Kind::kColumn:
        step.column = e.column();
        return Intern(std::move(step), /*count_dedup=*/false);
      case ScalarExpr::Kind::kLiteral:
        step.literal = e.literal();
        return Intern(std::move(step), /*count_dedup=*/false);
      case ScalarExpr::Kind::kBinary: {
        step.op = e.op();
        step.lhs = Lower(*e.lhs());
        step.rhs = Lower(*e.rhs());
        // Canonical operand order for the commutative operators: IEEE-754
        // add/mul and wrapping int arithmetic are operand-order-invariant,
        // so sorting the step indices merges A+B with B+A bit-exactly.
        if ((e.op() == ScalarExpr::BinOp::kAdd ||
             e.op() == ScalarExpr::BinOp::kMul) &&
            step.rhs < step.lhs) {
          std::swap(step.lhs, step.rhs);
        }
        return Intern(std::move(step), /*count_dedup=*/true);
      }
    }
    return Intern(std::move(step), /*count_dedup=*/false);
  }
};

/// A ScheduleBuilder whose column references resolve through a scope: the
/// visible schema's ColumnId -> producing step. Ids absent from the scope
/// are chain-input columns and intern as kColumn steps (cached in the scope
/// so repeated loads share one step).
struct PipelineBuilder : ScheduleBuilder {
  std::unordered_map<ColumnId, int> scope;

  int LowerColumnRef(ColumnId id) {
    auto it = scope.find(id);
    if (it != scope.end()) return it->second;
    ExprStep step;
    step.kind = ScalarExpr::Kind::kColumn;
    step.column = id;
    int s = Intern(std::move(step), /*count_dedup=*/false);
    scope.emplace(id, s);
    return s;
  }

  int LowerExpr(const ScalarExpr& e) {
    if (e.kind() == ScalarExpr::Kind::kColumn) {
      return LowerColumnRef(e.column());
    }
    if (e.kind() == ScalarExpr::Kind::kLiteral) {
      ExprStep step;
      step.kind = ScalarExpr::Kind::kLiteral;
      step.literal = e.literal();
      return Intern(std::move(step), /*count_dedup=*/false);
    }
    ExprStep step;
    step.kind = ScalarExpr::Kind::kBinary;
    step.op = e.op();
    step.lhs = LowerExpr(*e.lhs());
    step.rhs = LowerExpr(*e.rhs());
    if ((e.op() == ScalarExpr::BinOp::kAdd ||
         e.op() == ScalarExpr::BinOp::kMul) &&
        step.rhs < step.lhs) {
      std::swap(step.lhs, step.rhs);
    }
    return Intern(std::move(step), /*count_dedup=*/true);
  }
};

}  // namespace

ExprSchedule BuildExprSchedule(const std::vector<ComputeItem>& items) {
  ExprSchedule sched;
  ScheduleBuilder builder{&sched.steps, &sched.duplicates_eliminated, {}};
  sched.item_steps.reserve(items.size());
  for (const ComputeItem& item : items) {
    sched.item_steps.push_back(builder.Lower(*item.expr));
  }
  return sched;
}

PipelineSchedule BuildPipelineSchedule(
    const std::vector<PipelineStageDesc>& stage_descs) {
  PipelineSchedule sched;
  PipelineBuilder builder;
  builder.steps = &sched.steps;
  builder.duplicates_eliminated = &sched.duplicates_eliminated;

  for (const PipelineStageDesc& desc : stage_descs) {
    PipelineStage stage;
    size_t first_new = sched.steps.size();
    if (desc.predicates != nullptr) {
      stage.is_filter = true;
      for (const BoundPredicate& pred : *desc.predicates) {
        PredStep ps;
        ps.op = pred.op;
        ps.lhs = builder.LowerColumnRef(pred.lhs);
        if (pred.rhs_is_column) {
          ps.rhs = builder.LowerColumnRef(pred.rhs);
        } else {
          ps.literal = pred.literal;
        }
        stage.preds.push_back(std::move(ps));
      }
    } else if (desc.items != nullptr) {
      std::unordered_map<ColumnId, int> next_scope;
      for (const ComputeItem& item : *desc.items) {
        int s = builder.LowerExpr(*item.expr);
        stage.out_steps.push_back(s);
        next_scope[item.out] = s;
      }
      builder.scope = std::move(next_scope);
      sched.output_steps = stage.out_steps;
      sched.reshaped = true;
    } else {
      std::unordered_map<ColumnId, int> next_scope;
      for (const auto& [src, dst] : *desc.project) {
        int s = builder.LowerColumnRef(src);
        stage.out_steps.push_back(s);
        next_scope[dst] = s;
      }
      builder.scope = std::move(next_scope);
      sched.output_steps = stage.out_steps;
      sched.reshaped = true;
    }
    for (size_t s = first_new; s < sched.steps.size(); ++s) {
      stage.eval_steps.push_back(static_cast<int>(s));
      if (sched.steps[s].kind != ScalarExpr::Kind::kColumn) {
        stage.has_eval = true;
      }
    }
    sched.stages.push_back(std::move(stage));
  }

  // Liveness: the largest stage index reading each step's column. Operands
  // of a step evaluated at stage s are read at s; predicate sides are read
  // at their filter's stage; a stage's outputs are live through the stage;
  // the final reshape's outputs are live forever (they ARE the output).
  sched.last_use.assign(sched.steps.size(), -1);
  auto mark = [&](int step, int at) {
    if (step >= 0) {
      int& lu = sched.last_use[static_cast<size_t>(step)];
      lu = std::max(lu, at);
    }
  };
  for (size_t i = 0; i < sched.stages.size(); ++i) {
    const PipelineStage& stage = sched.stages[i];
    int at = static_cast<int>(i);
    for (const PredStep& ps : stage.preds) {
      mark(ps.lhs, at);
      mark(ps.rhs, at);
    }
    for (int s : stage.eval_steps) {
      const ExprStep& step = sched.steps[static_cast<size_t>(s)];
      if (step.kind == ScalarExpr::Kind::kBinary) {
        mark(step.lhs, at);
        mark(step.rhs, at);
      }
    }
    for (int s : stage.out_steps) mark(s, at);
  }
  for (int s : sched.output_steps) mark(s, kPipelineOutputUse);
  return sched;
}

}  // namespace scx
