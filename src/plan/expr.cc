#include "plan/expr.h"

#include "common/hash.h"

namespace scx {

ColumnSet BoundPredicate::ReferencedColumns() const {
  ColumnSet s;
  s.Insert(lhs);
  if (rhs_is_column) s.Insert(rhs);
  return s;
}

bool BoundPredicate::Evaluate(const Row& row, const Schema& schema) const {
  int lpos = schema.PositionOf(lhs);
  const Value& lv = row[static_cast<size_t>(lpos)];
  const Value* rv;
  Value tmp;
  if (rhs_is_column) {
    int rpos = schema.PositionOf(rhs);
    rv = &row[static_cast<size_t>(rpos)];
  } else {
    rv = &literal;
  }
  // Mixed int/double comparisons compare numerically (the canonical Value
  // ordering ranks by type first, which is right for sorting heterogeneous
  // sets but wrong for predicates like `Sum(X)/Count(*) > 240`).
  std::strong_ordering cmp = std::strong_ordering::equal;
  if (lv.type() != rv->type() && !lv.is_string() && !rv->is_string()) {
    double a = lv.AsNumeric(), b = rv->AsNumeric();
    cmp = a < b ? std::strong_ordering::less
                : (a > b ? std::strong_ordering::greater
                         : std::strong_ordering::equal);
  } else {
    cmp = lv <=> *rv;
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  (void)tmp;
  return false;
}

uint64_t BoundPredicate::Hash() const {
  uint64_t h = 0x1f3a5c7e9b2d4f60ULL;
  h = HashCombine(h, lhs);
  h = HashCombine(h, static_cast<uint64_t>(op));
  h = HashCombine(h, rhs_is_column ? 1 : 0);
  if (rhs_is_column) {
    h = HashCombine(h, rhs);
  } else {
    h = HashCombine(h, literal.Hash());
  }
  return h;
}

std::string BoundPredicate::ToString(const Schema& schema) const {
  std::string out = schema.NameOf(lhs);
  out += CompareOpName(op);
  out += rhs_is_column ? schema.NameOf(rhs) : literal.ToString();
  return out;
}

bool operator==(const BoundPredicate& a, const BoundPredicate& b) {
  if (a.lhs != b.lhs || a.op != b.op || a.rhs_is_column != b.rhs_is_column) {
    return false;
  }
  return a.rhs_is_column ? a.rhs == b.rhs : a.literal == b.literal;
}

uint64_t AggregateDesc::Hash() const {
  uint64_t h = 0x7b2e4d6f8a9c0e12ULL;
  h = HashCombine(h, static_cast<uint64_t>(fn));
  h = HashCombine(h, count_star ? 1 : 0);
  h = HashCombine(h, arg);
  return h;
}

std::string AggregateDesc::ToString() const {
  std::string text = AggFnName(fn);
  text += "(";
  text += count_star ? "*" : "#" + std::to_string(arg);
  text += ")->";
  if (out_name.empty()) {
    text += "#" + std::to_string(out);
  } else {
    text += out_name;
  }
  return text;
}

bool operator==(const AggregateDesc& a, const AggregateDesc& b) {
  return a.fn == b.fn && a.count_star == b.count_star && a.arg == b.arg &&
         a.out == b.out && a.hidden_count == b.hidden_count;
}

}  // namespace scx
