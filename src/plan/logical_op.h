#ifndef SCX_PLAN_LOGICAL_OP_H_
#define SCX_PLAN_LOGICAL_OP_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "plan/expr.h"
#include "plan/scalar.h"

namespace scx {

/// Logical operator kinds. kLocalGbAgg/kGlobalGbAgg only appear after the
/// optimizer's aggregate-split transformation; the binder emits kGbAgg.
enum class LogicalOpKind {
  kExtract,
  kFilter,
  kProject,
  kCompute,
  kGbAgg,
  kLocalGbAgg,
  kGlobalGbAgg,
  kJoin,
  kUnionAll,
  kSpool,
  kOutput,
  kSequence,
};

const char* LogicalOpKindName(LogicalOpKind kind);

/// Stable operator-kind identifier used in expression fingerprints (paper
/// Def. 1: "all group-by operations have the same OpID").
uint64_t LogicalOpId(LogicalOpKind kind);

class LogicalNode;
using LogicalNodePtr = std::shared_ptr<LogicalNode>;

/// A node of the bound logical operator DAG. Shared subexpressions written
/// via named intermediate results appear as one node with multiple parents.
class LogicalNode {
 public:
  LogicalNode(LogicalOpKind kind, Schema schema,
              std::vector<LogicalNodePtr> children)
      : kind_(kind), schema_(std::move(schema)), children_(std::move(children)) {}

  LogicalOpKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  /// Mutable schema access, used when Algorithm 1 rewrites column identities
  /// while merging duplicate subexpressions.
  Schema* mutable_schema() { return &schema_; }

  /// Copies this node's payload (and child pointers, used only for
  /// description in memo context). The memo clones payloads so that
  /// optimizer-side rewrites never mutate the caller's bound DAG.
  LogicalNodePtr Clone() const {
    auto copy = std::make_shared<LogicalNode>(kind_, schema_, children_);
    copy->file = file;
    copy->predicates = predicates;
    copy->project_map = project_map;
    copy->compute_items = compute_items;
    copy->group_cols = group_cols;
    copy->aggregates = aggregates;
    copy->join_keys = join_keys;
    copy->output_path = output_path;
    copy->order_by = order_by;
    copy->result_name = result_name;
    return copy;
  }
  const std::vector<LogicalNodePtr>& children() const { return children_; }
  LogicalNodePtr child(int i) const {
    return children_[static_cast<size_t>(i)];
  }
  int num_children() const { return static_cast<int>(children_.size()); }

  // --- per-kind payload (public by design: this is a passive data DAG) ---

  /// kExtract
  FileDef file;

  /// kFilter (conjunction) and kJoin residual predicates.
  std::vector<BoundPredicate> predicates;

  /// kProject: (source id, output id) pairs in output order. Usually
  /// source == output (pure prune/reorder/rename via `schema_`); output ids
  /// differ when the binder must disambiguate column identities, e.g. on the
  /// right side of a join between two results derived from one shared
  /// subexpression.
  std::vector<std::pair<ColumnId, ColumnId>> project_map;

  /// kCompute: computed outputs in order (passthrough items forward a
  /// column under its original id; computed items mint fresh ids).
  std::vector<ComputeItem> compute_items;

  /// kGbAgg / kLocalGbAgg / kGlobalGbAgg
  std::vector<ColumnId> group_cols;
  std::vector<AggregateDesc> aggregates;

  /// kJoin: equi-join key pairs (left column, right column).
  std::vector<std::pair<ColumnId, ColumnId>> join_keys;

  /// kOutput
  std::string output_path;
  /// kOutput: requested global output order (from the defining SELECT's
  /// ORDER BY). Empty = unordered parallel output.
  std::vector<ColumnId> order_by;

  /// Name of the script result this node defines ("" for internal nodes).
  std::string result_name;

  /// One-line description, e.g. "GbAgg[{A,B}; Sum(S)->S1]".
  std::string Describe() const;

 private:
  LogicalOpKind kind_;
  Schema schema_;
  std::vector<LogicalNodePtr> children_;
};

/// Pretty-prints the DAG rooted at `root`; shared nodes are expanded once and
/// referenced by `@<id>` afterwards.
std::string PrintLogicalDag(const LogicalNodePtr& root);

/// All nodes reachable from `root` in a stable bottom-up (children before
/// parents) order; each shared node appears once.
std::vector<LogicalNodePtr> TopologicalNodes(const LogicalNodePtr& root);

}  // namespace scx

#endif  // SCX_PLAN_LOGICAL_OP_H_
