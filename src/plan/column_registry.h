#ifndef SCX_PLAN_COLUMN_REGISTRY_H_
#define SCX_PLAN_COLUMN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/column_set.h"
#include "common/value.h"

namespace scx {

/// Plan-wide metadata for one column id.
struct ColumnMeta {
  std::string name;
  DataType type = DataType::kInt64;
  /// Distinct-value count for base (extracted) columns; 0 when the value must
  /// be derived by the cardinality estimator (aggregate outputs etc.).
  int64_t base_ndv = 0;
  /// Average byte width.
  int64_t avg_width = 8;
};

/// Dense registry of every column id minted while binding one script.
/// Shared by the plan, the optimizer's cardinality estimation, and the
/// executor.
class ColumnRegistry {
 public:
  /// Mints a fresh column id with the given metadata.
  ColumnId Create(ColumnMeta meta) {
    columns_.push_back(std::move(meta));
    return static_cast<ColumnId>(columns_.size() - 1);
  }

  const ColumnMeta& Get(ColumnId id) const {
    return columns_[static_cast<size_t>(id)];
  }
  ColumnMeta& GetMutable(ColumnId id) {
    return columns_[static_cast<size_t>(id)];
  }

  int NumColumns() const { return static_cast<int>(columns_.size()); }

 private:
  std::vector<ColumnMeta> columns_;
};

using ColumnRegistryPtr = std::shared_ptr<ColumnRegistry>;

}  // namespace scx

#endif  // SCX_PLAN_COLUMN_REGISTRY_H_
