#include "plan/binder.h"

#include <set>

namespace scx {

namespace {

/// Returns a copy of `node`'s schema with every qualifier replaced by
/// `source_name` — the name the consumer uses in FROM, which is how columns
/// are addressed in the consuming SELECT.
Schema ResolutionSchema(const LogicalNodePtr& node,
                        const std::string& source_name) {
  Schema out;
  for (const ColumnInfo& c : node->schema().columns()) {
    ColumnInfo copy = c;
    copy.qualifier = source_name;
    out.AddColumn(copy);
  }
  return out;
}

DataType AggOutputType(AggFn fn, DataType arg_type) {
  switch (fn) {
    case AggFn::kSum:
      return arg_type == DataType::kDouble ? DataType::kDouble
                                           : DataType::kInt64;
    case AggFn::kCount:
      return DataType::kInt64;
    case AggFn::kMin:
    case AggFn::kMax:
      return arg_type;
    case AggFn::kAvg:
      return DataType::kDouble;
  }
  return DataType::kInt64;
}

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}
  Binder(const Catalog& catalog, ColumnRegistryPtr columns)
      : catalog_(catalog), columns_(std::move(columns)) {}

  Result<BoundScript> Bind(const AstScript& ast) {
    std::vector<LogicalNodePtr> outputs;
    for (const AstStatement& stmt : ast.statements) {
      if (stmt.kind == AstStatement::Kind::kAssign) {
        if (results_.count(stmt.target) != 0) {
          return Status::BindError("result redefined: " + stmt.target);
        }
        LogicalNodePtr node;
        if (stmt.query.kind == AstQuery::Kind::kExtract) {
          SCX_ASSIGN_OR_RETURN(node,
                               BindExtract(stmt.query.extract, stmt.target));
        } else if (stmt.query.kind == AstQuery::Kind::kUnion) {
          SCX_ASSIGN_OR_RETURN(
              node, BindUnion(stmt.query.union_all, stmt.target));
        } else {
          SCX_ASSIGN_OR_RETURN(node,
                               BindSelect(stmt.query.select, stmt.target));
        }
        node->result_name = stmt.target;
        results_[stmt.target] = node;
      } else {
        auto it = results_.find(stmt.output_rel);
        if (it == results_.end()) {
          return Status::BindError("OUTPUT of undefined result: " +
                                   stmt.output_rel);
        }
        auto out = std::make_shared<LogicalNode>(
            LogicalOpKind::kOutput, it->second->schema(),
            std::vector<LogicalNodePtr>{it->second});
        out->output_path = stmt.output_path;
        out->order_by = it->second->order_by;
        outputs.push_back(std::move(out));
      }
    }
    if (outputs.empty()) {
      return Status::BindError("script has no OUTPUT statement");
    }
    BoundScript bound;
    if (outputs.size() == 1) {
      bound.root = outputs[0];
    } else {
      bound.root = std::make_shared<LogicalNode>(LogicalOpKind::kSequence,
                                                 Schema(), std::move(outputs));
    }
    bound.results = std::move(results_);
    bound.columns = columns_;
    return bound;
  }

 private:
  Result<LogicalNodePtr> BindExtract(const AstExtract& extract,
                                     const std::string& target) {
    SCX_ASSIGN_OR_RETURN(FileDef file, catalog_.GetFile(extract.path));
    Schema schema;
    for (const std::string& name : extract.columns) {
      int idx = file.ColumnIndex(name);
      if (idx < 0) {
        return Status::BindError("file " + extract.path + " has no column " +
                                 name);
      }
      const ColumnStats& cs = file.columns[static_cast<size_t>(idx)];
      ColumnMeta meta;
      meta.name = name;
      meta.type = cs.type;
      meta.base_ndv = cs.distinct_count;
      meta.avg_width = cs.avg_width;
      ColumnId id = columns_->Create(meta);
      schema.AddColumn(ColumnInfo{id, name, target, cs.type});
    }
    auto node = std::make_shared<LogicalNode>(
        LogicalOpKind::kExtract, std::move(schema),
        std::vector<LogicalNodePtr>{});
    node->file = std::move(file);
    return node;
  }

  Result<LogicalNodePtr> BindSelect(const AstSelect& select,
                                    const std::string& target) {
    // Resolve sources.
    std::vector<LogicalNodePtr> sources;
    std::vector<Schema> res_schemas;
    for (const std::string& name : select.sources) {
      auto it = results_.find(name);
      if (it == results_.end()) {
        return Status::BindError("unknown relation in FROM: " + name);
      }
      sources.push_back(it->second);
      res_schemas.push_back(ResolutionSchema(it->second, name));
    }
    if (sources.size() == 2 && select.sources[0] == select.sources[1]) {
      return Status::BindError(
          "self-join of one result name is not supported; alias via an "
          "intermediate SELECT");
    }

    LogicalNodePtr current;
    Schema combined;  // schema used to resolve select items / group by
    if (sources.size() == 1) {
      SCX_ASSIGN_OR_RETURN(
          current, ApplyLocalFilter(sources[0], res_schemas[0], select.where,
                                    /*check_all=*/true));
      combined = res_schemas[0];
    } else {
      SCX_ASSIGN_OR_RETURN(current, BindJoin(select, sources, res_schemas,
                                             &combined));
    }

    // Group-by / aggregation.
    bool has_aggregate = false;
    for (const AstSelectItem& item : select.items) {
      if (item.is_aggregate) has_aggregate = true;
    }
    if (!select.group_by.empty() && !has_aggregate) {
      return Status::BindError("GROUP BY without aggregates is not supported");
    }
    if (select.distinct && has_aggregate) {
      return Status::BindError(
          "DISTINCT with aggregates is redundant and not supported");
    }
    if (!select.having.empty() && !has_aggregate) {
      return Status::BindError("HAVING requires GROUP BY aggregation");
    }

    std::vector<std::pair<ColumnId, std::string>> desired;  // (id, out name)
    if (has_aggregate) {
      // Computed plain items over the grouping columns are evaluated after
      // the aggregation (and after HAVING), via a Compute node.
      std::vector<ComputeItem> post_compute;
      SCX_ASSIGN_OR_RETURN(
          current, BindAggregate(select, current, combined, target, &desired,
                                 &post_compute));
      if (!select.having.empty()) {
        SCX_ASSIGN_OR_RETURN(
            current, ApplyLocalFilter(current, current->schema(),
                                      select.having, /*check_all=*/true));
      }
      if (!post_compute.empty()) {
        // Forward every aggregate-output column and append the computed
        // ones; the final projection below orders and prunes.
        std::vector<ComputeItem> items;
        for (const ColumnInfo& c : current->schema().columns()) {
          ComputeItem pass;
          pass.expr = ScalarExpr::Column(c.id);
          pass.out = c.id;
          pass.out_name = c.name;
          items.push_back(std::move(pass));
        }
        for (ComputeItem& item : post_compute) {
          items.push_back(std::move(item));
        }
        current = MakeComputeNode(current, std::move(items), target);
      }
    } else if (select.distinct) {
      for (const AstSelectItem& item : select.items) {
        if (item.scalar != nullptr) {
          return Status::BindError(
              "DISTINCT over computed expressions is not supported");
        }
      }
      SCX_ASSIGN_OR_RETURN(
          current, BindDistinct(select, current, combined, target, &desired));
    } else {
      bool any_scalar = false;
      for (const AstSelectItem& item : select.items) {
        if (item.scalar != nullptr) any_scalar = true;
      }
      if (any_scalar) {
        std::vector<ComputeItem> items;
        for (const AstSelectItem& item : select.items) {
          if (item.scalar != nullptr) {
            SCX_ASSIGN_OR_RETURN(ScalarExprPtr expr,
                                 BindScalar(*item.scalar, combined));
            std::string name = item.alias.empty()
                                   ? "expr_" + std::to_string(items.size())
                                   : item.alias;
            SCX_ASSIGN_OR_RETURN(ComputeItem ci,
                                 MakeComputedItem(std::move(expr), name));
            desired.emplace_back(ci.out, name);
            items.push_back(std::move(ci));
          } else {
            SCX_ASSIGN_OR_RETURN(
                ColumnInfo info,
                combined.Resolve(item.column.qualifier, item.column.name));
            ComputeItem pass;
            pass.expr = ScalarExpr::Column(info.id);
            pass.out = info.id;
            pass.out_name =
                item.alias.empty() ? info.name : item.alias;
            desired.emplace_back(info.id, pass.out_name);
            items.push_back(std::move(pass));
          }
        }
        current = MakeComputeNode(current, std::move(items), target);
      } else {
        for (const AstSelectItem& item : select.items) {
          SCX_ASSIGN_OR_RETURN(
              ColumnInfo info,
              combined.Resolve(item.column.qualifier, item.column.name));
          desired.emplace_back(info.id,
                               item.alias.empty() ? info.name : item.alias);
        }
      }
    }

    // Final projection if the select list deviates from the node's schema.
    bool identical =
        static_cast<int>(desired.size()) == current->schema().NumColumns();
    if (identical) {
      for (size_t i = 0; i < desired.size(); ++i) {
        const ColumnInfo& c = current->schema().column(static_cast<int>(i));
        if (c.id != desired[i].first || c.name != desired[i].second) {
          identical = false;
          break;
        }
      }
    }
    if (!identical) {
      Schema proj_schema;
      std::vector<std::pair<ColumnId, ColumnId>> project_map;
      for (const auto& [id, name] : desired) {
        int pos = current->schema().PositionOf(id);
        if (pos < 0) {
          return Status::BindError("projected column lost: " + name);
        }
        proj_schema.AddColumn(
            ColumnInfo{id, name, target, current->schema().column(pos).type});
        project_map.emplace_back(id, id);
      }
      auto project = std::make_shared<LogicalNode>(
          LogicalOpKind::kProject, std::move(proj_schema),
          std::vector<LogicalNodePtr>{current});
      project->project_map = std::move(project_map);
      current = std::move(project);
    }

    // ORDER BY: recorded on the defining node; it takes effect when the
    // result is OUTPUT (a globally ordered file), and is ignored — as in
    // SQL — when the result is consumed by further operators.
    for (const AstColumnRef& ref : select.order_by) {
      SCX_ASSIGN_OR_RETURN(ColumnInfo info,
                           current->schema().Resolve(ref.qualifier, ref.name));
      current->order_by.push_back(info.id);
    }
    return current;
  }

  /// Binds the WHERE predicates that resolve entirely in `schema` and wraps
  /// `node` in a Filter when any exist. When `check_all`, every predicate
  /// must resolve (single-source SELECT).
  Result<LogicalNodePtr> ApplyLocalFilter(
      const LogicalNodePtr& node, const Schema& schema,
      const std::vector<AstPredicate>& preds, bool check_all) {
    std::vector<BoundPredicate> bound;
    // Composite predicate sides (e.g. `WHERE Amount-Fee > 0`) are desugared
    // through a Compute producing a temporary column below the filter; the
    // temporaries are projected away again above it.
    std::vector<ComputeItem> temps;

    auto bind_scalar_side =
        [&](const AstScalarPtr& scalar) -> Result<ColumnId> {
      SCX_ASSIGN_OR_RETURN(ScalarExprPtr expr, BindScalar(*scalar, schema));
      SCX_ASSIGN_OR_RETURN(
          ComputeItem item,
          MakeComputedItem(std::move(expr),
                           "cmp_" + std::to_string(temps.size())));
      ColumnId id = item.out;
      temps.push_back(std::move(item));
      return id;
    };

    for (const AstPredicate& pred : preds) {
      BoundPredicate bp;
      bp.op = pred.op;
      if (pred.lhs_scalar != nullptr) {
        auto lhs = bind_scalar_side(pred.lhs_scalar);
        if (!lhs.ok()) {
          if (check_all) return lhs.status();
          continue;
        }
        bp.lhs = lhs.value();
      } else {
        auto lhs = schema.Resolve(pred.lhs.qualifier, pred.lhs.name);
        if (!lhs.ok()) {
          if (check_all) return lhs.status();
          continue;
        }
        bp.lhs = lhs.value().id;
      }
      if (pred.rhs_scalar != nullptr) {
        auto rhs = bind_scalar_side(pred.rhs_scalar);
        if (!rhs.ok()) {
          if (check_all) return rhs.status();
          continue;
        }
        bp.rhs_is_column = true;
        bp.rhs = rhs.value();
      } else if (pred.rhs_is_column) {
        auto rhs = schema.Resolve(pred.rhs_column.qualifier,
                                  pred.rhs_column.name);
        if (!rhs.ok()) {
          if (check_all) return rhs.status();
          continue;
        }
        bp.rhs_is_column = true;
        bp.rhs = rhs.value().id;
      } else {
        bp.literal = pred.rhs_literal;
      }
      bound.push_back(std::move(bp));
    }
    if (bound.empty()) return node;

    LogicalNodePtr input = node;
    if (!temps.empty()) {
      std::vector<ComputeItem> items;
      for (const ColumnInfo& c : node->schema().columns()) {
        ComputeItem pass;
        pass.expr = ScalarExpr::Column(c.id);
        pass.out = c.id;
        pass.out_name = c.name;
        items.push_back(std::move(pass));
      }
      for (ComputeItem& t : temps) items.push_back(std::move(t));
      input = MakeComputeNode(node, std::move(items), "");
    }

    Schema filter_schema = temps.empty() ? schema : input->schema();
    auto filter = std::make_shared<LogicalNode>(
        LogicalOpKind::kFilter, std::move(filter_schema),
        std::vector<LogicalNodePtr>{input});
    filter->predicates = std::move(bound);
    if (temps.empty()) return filter;

    // Drop the comparison temporaries, restoring the original schema.
    Schema restored = schema;
    auto project = std::make_shared<LogicalNode>(
        LogicalOpKind::kProject, std::move(restored),
        std::vector<LogicalNodePtr>{filter});
    for (const ColumnInfo& c : schema.columns()) {
      project->project_map.emplace_back(c.id, c.id);
    }
    return project;
  }

  Result<LogicalNodePtr> BindJoin(const AstSelect& select,
                                  std::vector<LogicalNodePtr>& sources,
                                  std::vector<Schema>& res_schemas,
                                  Schema* combined) {
    // Classify predicates into per-side filters, equi-join keys, and
    // cross-side residual predicates.
    std::vector<AstPredicate> side_preds[2];
    struct CrossPred {
      AstPredicate pred;
      ColumnId left_id;
      ColumnId right_id;
    };
    std::vector<CrossPred> cross;

    for (const AstPredicate& pred : select.where) {
      if (pred.lhs_scalar != nullptr || pred.rhs_scalar != nullptr) {
        // Composite predicates must resolve entirely within one join side
        // (cross-side arithmetic would have to run post-join; unsupported).
        bool on[2];
        for (int side = 0; side < 2; ++side) {
          on[side] = PredicateBindsIn(pred, res_schemas[static_cast<size_t>(
                                                side)]);
        }
        if (on[0] == on[1]) {
          return Status::BindError(
              "composite predicate " + pred.ToString() +
              (on[0] ? " is ambiguous between the join sides"
                     : " must resolve within one join side"));
        }
        side_preds[on[0] ? 0 : 1].push_back(pred);
        continue;
      }
      SCX_ASSIGN_OR_RETURN(auto lhs_side,
                           ResolveSide(res_schemas, pred.lhs));
      if (!pred.rhs_is_column) {
        side_preds[lhs_side.first].push_back(pred);
        continue;
      }
      SCX_ASSIGN_OR_RETURN(auto rhs_side,
                           ResolveSide(res_schemas, pred.rhs_column));
      if (lhs_side.first == rhs_side.first) {
        side_preds[lhs_side.first].push_back(pred);
        continue;
      }
      CrossPred cp;
      cp.pred = pred;
      if (lhs_side.first == 0) {
        cp.left_id = lhs_side.second.id;
        cp.right_id = rhs_side.second.id;
      } else {
        cp.left_id = rhs_side.second.id;
        cp.right_id = lhs_side.second.id;
        // Mirror the comparison so that lhs refers to the left side.
        switch (cp.pred.op) {
          case CompareOp::kLt:
            cp.pred.op = CompareOp::kGt;
            break;
          case CompareOp::kLe:
            cp.pred.op = CompareOp::kGe;
            break;
          case CompareOp::kGt:
            cp.pred.op = CompareOp::kLt;
            break;
          case CompareOp::kGe:
            cp.pred.op = CompareOp::kLe;
            break;
          default:
            break;
        }
      }
      cross.push_back(std::move(cp));
    }

    LogicalNodePtr left, right;
    SCX_ASSIGN_OR_RETURN(
        left, ApplyLocalFilter(sources[0], res_schemas[0], side_preds[0],
                               /*check_all=*/true));
    SCX_ASSIGN_OR_RETURN(
        right, ApplyLocalFilter(sources[1], res_schemas[1], side_preds[1],
                                /*check_all=*/true));

    // Disambiguate column identities when both sides share ids (both derived
    // from one shared subexpression): rename the right side's colliding ids.
    ColumnSet left_ids = res_schemas[0].IdSet();
    ColumnSet right_ids = res_schemas[1].IdSet();
    std::map<ColumnId, ColumnId> right_remap;
    if (left_ids.Intersects(right_ids)) {
      Schema renamed;
      std::vector<std::pair<ColumnId, ColumnId>> project_map;
      for (const ColumnInfo& c : res_schemas[1].columns()) {
        ColumnId out_id = c.id;
        if (left_ids.Contains(c.id)) {
          ColumnMeta meta = columns_->Get(c.id);
          out_id = columns_->Create(meta);
          right_remap[c.id] = out_id;
        }
        renamed.AddColumn(ColumnInfo{out_id, c.name, c.qualifier, c.type});
        project_map.emplace_back(c.id, out_id);
      }
      auto rename = std::make_shared<LogicalNode>(
          LogicalOpKind::kProject, renamed, std::vector<LogicalNodePtr>{right});
      rename->project_map = std::move(project_map);
      right = std::move(rename);
      res_schemas[1] = std::move(renamed);
    }

    // Build join keys / residual predicates.
    std::vector<std::pair<ColumnId, ColumnId>> keys;
    std::vector<BoundPredicate> residual;
    for (CrossPred& cp : cross) {
      auto it = right_remap.find(cp.right_id);
      if (it != right_remap.end()) cp.right_id = it->second;
      if (cp.pred.op == CompareOp::kEq) {
        keys.emplace_back(cp.left_id, cp.right_id);
      } else {
        BoundPredicate bp;
        bp.lhs = cp.left_id;
        bp.op = cp.pred.op;
        bp.rhs_is_column = true;
        bp.rhs = cp.right_id;
        residual.push_back(std::move(bp));
      }
    }
    if (keys.empty()) {
      return Status::BindError(
          "join requires at least one cross-relation equality predicate");
    }

    Schema join_schema = res_schemas[0];
    for (const ColumnInfo& c : res_schemas[1].columns()) {
      join_schema.AddColumn(c);
    }
    auto join = std::make_shared<LogicalNode>(
        LogicalOpKind::kJoin, join_schema,
        std::vector<LogicalNodePtr>{left, right});
    join->join_keys = std::move(keys);
    join->predicates = std::move(residual);
    *combined = std::move(join_schema);
    return join;
  }

  /// True iff every column reference in `pred` (both sides) resolves in
  /// `schema`.
  bool PredicateBindsIn(const AstPredicate& pred, const Schema& schema) {
    auto scalar_ok = [&](const AstScalarPtr& s) {
      return BindScalar(*s, schema).ok();
    };
    bool lhs_ok = pred.lhs_scalar != nullptr
                      ? scalar_ok(pred.lhs_scalar)
                      : schema.Resolve(pred.lhs.qualifier, pred.lhs.name).ok();
    if (!lhs_ok) return false;
    if (pred.rhs_scalar != nullptr) return scalar_ok(pred.rhs_scalar);
    if (pred.rhs_is_column) {
      return schema.Resolve(pred.rhs_column.qualifier, pred.rhs_column.name)
          .ok();
    }
    return true;
  }

  /// Resolves `ref` in exactly one of the two sides; errors when absent from
  /// both or ambiguous.
  Result<std::pair<int, ColumnInfo>> ResolveSide(
      const std::vector<Schema>& res_schemas, const AstColumnRef& ref) {
    auto in_left = res_schemas[0].Resolve(ref.qualifier, ref.name);
    auto in_right = res_schemas[1].Resolve(ref.qualifier, ref.name);
    if (in_left.ok() && in_right.ok()) {
      return Status::BindError("ambiguous column reference: " +
                               ref.ToString());
    }
    if (in_left.ok()) return std::make_pair(0, in_left.value());
    if (in_right.ok()) return std::make_pair(1, in_right.value());
    return Status::BindError("unknown column: " + ref.ToString());
  }

  /// UNION ALL: positional concatenation of results with identical column
  /// counts and types. Output columns get fresh ids (the inputs' identities
  /// differ); `project_map` records the (first-source id → output id)
  /// correspondence for statistics inheritance.
  Result<LogicalNodePtr> BindUnion(const AstUnion& ast,
                                   const std::string& target) {
    std::vector<LogicalNodePtr> children;
    for (const std::string& name : ast.sources) {
      auto it = results_.find(name);
      if (it == results_.end()) {
        return Status::BindError("unknown relation in UNION ALL: " + name);
      }
      children.push_back(it->second);
    }
    const Schema& first = children[0]->schema();
    for (size_t i = 1; i < children.size(); ++i) {
      const Schema& other = children[i]->schema();
      if (other.NumColumns() != first.NumColumns()) {
        return Status::BindError("UNION ALL sources have different widths");
      }
      for (int c = 0; c < first.NumColumns(); ++c) {
        if (other.column(c).type != first.column(c).type) {
          return Status::BindError(
              "UNION ALL sources differ in type at column " +
              std::to_string(c) + " (" + first.column(c).name + ")");
        }
      }
    }
    Schema schema;
    std::vector<std::pair<ColumnId, ColumnId>> mapping;
    for (const ColumnInfo& c : first.columns()) {
      ColumnMeta meta = columns_->Get(c.id);
      meta.base_ndv = 0;  // derived by the estimator
      ColumnId out = columns_->Create(meta);
      schema.AddColumn(ColumnInfo{out, c.name, target, c.type});
      mapping.emplace_back(c.id, out);
    }
    auto node = std::make_shared<LogicalNode>(
        LogicalOpKind::kUnionAll, std::move(schema), std::move(children));
    node->project_map = std::move(mapping);
    return node;
  }

  /// Binds an unbound scalar expression against `schema`, type-checking
  /// that arithmetic is applied to numeric operands only.
  Result<ScalarExprPtr> BindScalar(const AstScalar& ast,
                                   const Schema& schema) {
    switch (ast.kind) {
      case AstScalar::Kind::kColumn: {
        SCX_ASSIGN_OR_RETURN(
            ColumnInfo info,
            schema.Resolve(ast.column.qualifier, ast.column.name));
        return ScalarExpr::Column(info.id);
      }
      case AstScalar::Kind::kLiteral:
        return ScalarExpr::Literal(ast.literal);
      case AstScalar::Kind::kBinary: {
        SCX_ASSIGN_OR_RETURN(ScalarExprPtr lhs, BindScalar(*ast.lhs, schema));
        SCX_ASSIGN_OR_RETURN(ScalarExprPtr rhs, BindScalar(*ast.rhs, schema));
        auto type_of = [this](ColumnId id) { return columns_->Get(id).type; };
        if (lhs->ResultType(type_of) == DataType::kString ||
            rhs->ResultType(type_of) == DataType::kString) {
          return Status::BindError("arithmetic on STRING operand in " +
                                   ast.ToString());
        }
        ScalarExpr::BinOp op;
        switch (ast.op) {
          case '+':
            op = ScalarExpr::BinOp::kAdd;
            break;
          case '-':
            op = ScalarExpr::BinOp::kSub;
            break;
          case '*':
            op = ScalarExpr::BinOp::kMul;
            break;
          default:
            op = ScalarExpr::BinOp::kDiv;
            break;
        }
        return ScalarExpr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return Status::Internal("unhandled scalar kind");
  }

  /// Creates a ComputeItem computing `expr` into a fresh column.
  Result<ComputeItem> MakeComputedItem(ScalarExprPtr expr,
                                       const std::string& name) {
    auto type_of = [this](ColumnId id) { return columns_->Get(id).type; };
    ColumnMeta meta;
    meta.name = name;
    meta.type = expr->ResultType(type_of);
    ComputeItem item;
    item.out = columns_->Create(meta);
    item.out_name = name;
    item.expr = std::move(expr);
    return item;
  }

  /// Wraps `input` in a Compute node producing `items` (schema follows the
  /// item order; qualifiers set to `target`).
  LogicalNodePtr MakeComputeNode(const LogicalNodePtr& input,
                                 std::vector<ComputeItem> items,
                                 const std::string& target) {
    Schema schema;
    for (const ComputeItem& item : items) {
      DataType type;
      std::string name = item.out_name;
      if (item.IsPassthrough()) {
        int pos = input->schema().PositionOf(item.out);
        type = input->schema().column(pos).type;
        if (name.empty()) name = input->schema().column(pos).name;
      } else {
        type = columns_->Get(item.out).type;
      }
      schema.AddColumn(ColumnInfo{item.out, name, target, type});
    }
    auto node = std::make_shared<LogicalNode>(
        LogicalOpKind::kCompute, std::move(schema),
        std::vector<LogicalNodePtr>{input});
    node->compute_items = std::move(items);
    return node;
  }

  /// SELECT DISTINCT a,b FROM x — a group-by on the selected columns with
  /// no aggregate computations.
  Result<LogicalNodePtr> BindDistinct(
      const AstSelect& select, const LogicalNodePtr& input,
      const Schema& combined, const std::string& target,
      std::vector<std::pair<ColumnId, std::string>>* desired) {
    std::vector<ColumnId> group_cols;
    ColumnSet seen;
    Schema schema;
    for (const AstSelectItem& item : select.items) {
      SCX_ASSIGN_OR_RETURN(
          ColumnInfo info,
          combined.Resolve(item.column.qualifier, item.column.name));
      if (seen.Contains(info.id)) {
        return Status::BindError("duplicate column in SELECT DISTINCT: " +
                                 item.column.ToString());
      }
      seen.Insert(info.id);
      group_cols.push_back(info.id);
      std::string name = item.alias.empty() ? info.name : item.alias;
      schema.AddColumn(ColumnInfo{info.id, name, target, info.type});
      desired->emplace_back(info.id, name);
    }
    auto node = std::make_shared<LogicalNode>(
        LogicalOpKind::kGbAgg, std::move(schema),
        std::vector<LogicalNodePtr>{input});
    node->group_cols = std::move(group_cols);
    return node;
  }

  Result<LogicalNodePtr> BindAggregate(
      const AstSelect& select, const LogicalNodePtr& input,
      const Schema& combined, const std::string& target,
      std::vector<std::pair<ColumnId, std::string>>* desired,
      std::vector<ComputeItem>* post_compute) {
    std::vector<ColumnId> group_cols;
    ColumnSet group_set;
    for (const AstColumnRef& ref : select.group_by) {
      SCX_ASSIGN_OR_RETURN(ColumnInfo info,
                           combined.Resolve(ref.qualifier, ref.name));
      if (group_set.Contains(info.id)) {
        return Status::BindError("duplicate GROUP BY column: " +
                                 ref.ToString());
      }
      group_cols.push_back(info.id);
      group_set.Insert(info.id);
    }

    // Composite aggregate arguments (e.g. Sum(A*B)) are computed BELOW the
    // aggregation: one Compute node forwarding every input column and
    // appending one temporary per composite argument.
    LogicalNodePtr agg_input = input;
    Schema arg_schema = combined;
    std::map<const AstSelectItem*, ColumnId> arg_temp;
    {
      std::vector<ComputeItem> pre_items;
      for (const AstSelectItem& item : select.items) {
        if (!item.is_aggregate || item.scalar == nullptr) continue;
        SCX_ASSIGN_OR_RETURN(ScalarExprPtr expr,
                             BindScalar(*item.scalar, combined));
        std::string name = "arg_" + std::to_string(pre_items.size());
        SCX_ASSIGN_OR_RETURN(ComputeItem ci,
                             MakeComputedItem(std::move(expr), name));
        arg_temp[&item] = ci.out;
        pre_items.push_back(std::move(ci));
      }
      if (!pre_items.empty()) {
        std::vector<ComputeItem> items;
        for (const ColumnInfo& c : input->schema().columns()) {
          ComputeItem pass;
          pass.expr = ScalarExpr::Column(c.id);
          pass.out = c.id;
          pass.out_name = c.name;
          items.push_back(std::move(pass));
        }
        for (ComputeItem& item : pre_items) items.push_back(std::move(item));
        agg_input = MakeComputeNode(input, std::move(items), target);
        arg_schema = agg_input->schema();
      }
    }

    std::vector<AggregateDesc> aggs;
    Schema agg_schema;
    // Group columns first, in GROUP BY order.
    for (ColumnId id : group_cols) {
      int pos = combined.PositionOf(id);
      const ColumnInfo& c = combined.column(pos);
      agg_schema.AddColumn(ColumnInfo{id, c.name, target, c.type});
    }
    // Then aggregate outputs, in SELECT order.
    for (const AstSelectItem& item : select.items) {
      if (!item.is_aggregate) {
        if (item.scalar != nullptr) {
          // Computed plain item: must depend only on grouping columns;
          // evaluated above the aggregation by the caller.
          SCX_ASSIGN_OR_RETURN(ScalarExprPtr expr,
                               BindScalar(*item.scalar, combined));
          if (!expr->ReferencedColumns().IsSubsetOf(group_set)) {
            return Status::BindError(
                "computed item " + item.scalar->ToString() +
                " must reference GROUP BY columns only");
          }
          std::string name = item.alias.empty()
                                 ? "expr_" +
                                       std::to_string(post_compute->size())
                                 : item.alias;
          SCX_ASSIGN_OR_RETURN(ComputeItem ci,
                               MakeComputedItem(std::move(expr), name));
          desired->emplace_back(ci.out, name);
          post_compute->push_back(std::move(ci));
          continue;
        }
        SCX_ASSIGN_OR_RETURN(
            ColumnInfo info,
            combined.Resolve(item.column.qualifier, item.column.name));
        if (!group_set.Contains(info.id)) {
          return Status::BindError("column " + item.column.ToString() +
                                   " must appear in GROUP BY");
        }
        desired->emplace_back(info.id,
                              item.alias.empty() ? info.name : item.alias);
        continue;
      }
      AggregateDesc desc;
      desc.fn = item.fn;
      DataType arg_type = DataType::kInt64;
      std::string arg_name = "star";
      if (item.count_star) {
        desc.count_star = true;
      } else if (item.scalar != nullptr) {
        desc.arg = arg_temp.at(&item);
        arg_type = columns_->Get(desc.arg).type;
        arg_name = columns_->Get(desc.arg).name;
      } else {
        SCX_ASSIGN_OR_RETURN(
            ColumnInfo info,
            combined.Resolve(item.column.qualifier, item.column.name));
        desc.arg = info.id;
        arg_type = info.type;
        arg_name = info.name;
      }
      if ((item.fn == AggFn::kSum || item.fn == AggFn::kAvg) &&
          arg_type == DataType::kString) {
        return Status::BindError(std::string(AggFnName(item.fn)) +
                                 " requires a numeric argument, got STRING "
                                 "column " +
                                 arg_name);
      }
      desc.out_type = AggOutputType(item.fn, arg_type);
      desc.out_name = item.alias.empty()
                          ? std::string(AggFnName(item.fn)) + "_" + arg_name
                          : item.alias;
      ColumnMeta meta;
      meta.name = desc.out_name;
      meta.type = desc.out_type;
      desc.out = columns_->Create(meta);
      agg_schema.AddColumn(
          ColumnInfo{desc.out, desc.out_name, target, desc.out_type});
      desired->emplace_back(desc.out, desc.out_name);
      aggs.push_back(std::move(desc));
    }

    auto node = std::make_shared<LogicalNode>(
        LogicalOpKind::kGbAgg, std::move(agg_schema),
        std::vector<LogicalNodePtr>{agg_input});
    node->group_cols = std::move(group_cols);
    node->aggregates = std::move(aggs);
    (void)arg_schema;
    return node;
  }

  const Catalog& catalog_;
  ColumnRegistryPtr columns_ = std::make_shared<ColumnRegistry>();
  std::map<std::string, LogicalNodePtr> results_;
};

}  // namespace

Result<BoundScript> BindScript(const AstScript& ast, const Catalog& catalog) {
  Binder binder(catalog);
  return binder.Bind(ast);
}

Result<BoundScript> BindScript(const AstScript& ast, const Catalog& catalog,
                               ColumnRegistryPtr columns) {
  Binder binder(catalog, std::move(columns));
  return binder.Bind(ast);
}

Result<BoundBatch> BindScriptBatch(const std::vector<AstScript>& asts,
                                   const Catalog& catalog) {
  if (asts.empty()) {
    return Status::InvalidArgument("BindScriptBatch: empty batch");
  }
  auto columns = std::make_shared<ColumnRegistry>();
  BoundBatch batch;
  const bool tag = asts.size() > 1;
  for (size_t i = 0; i < asts.size(); ++i) {
    Result<BoundScript> bound = BindScript(asts[i], catalog, columns);
    if (!bound.ok()) {
      return Status::BindError("script " + std::to_string(i) + ": " +
                               bound.status().message());
    }
    BoundScript& script = bound.value();
    // Retarget this script's Output sinks to provenance-tagged paths so the
    // merged execution keeps each script's results separate even when two
    // scripts (or two statements) write the same path.
    std::vector<LogicalNodePtr> outs;
    if (script.root->kind() == LogicalOpKind::kSequence) {
      outs = script.root->children();
    } else {
      outs = {script.root};
    }
    std::vector<std::pair<std::string, std::string>> prov;
    for (const LogicalNodePtr& out : outs) {
      std::string original = out->output_path;
      if (tag) {
        out->output_path = "q" + std::to_string(i) + "::" + original;
      }
      bool seen = false;
      for (const auto& [merged_path, orig] : prov) {
        if (merged_path == out->output_path) {
          seen = true;
          break;
        }
      }
      if (!seen) prov.emplace_back(out->output_path, original);
    }
    batch.outputs.push_back(std::move(prov));
    batch.script_roots.push_back(script.root);
    for (auto& [name, node] : script.results) {
      std::string key = tag ? "q" + std::to_string(i) + "::" + name : name;
      batch.merged.results.emplace(std::move(key), node);
    }
  }
  batch.merged.columns = columns;
  if (batch.script_roots.size() == 1) {
    batch.merged.root = batch.script_roots[0];
  } else {
    batch.merged.root = std::make_shared<LogicalNode>(
        LogicalOpKind::kSequence, Schema(), batch.script_roots);
  }
  return batch;
}

}  // namespace scx
