// Tour of the full script dialect beyond the paper's S1-S4: scalar
// expressions (including as aggregate arguments), DISTINCT, HAVING,
// ORDER BY (range-partitioned parallel ordered output), UNION ALL — all on
// top of a shared subexpression so the CSE framework still has work to do.

#include <cstdio>

#include "api/engine.h"

namespace {

const char kScript[] = R"(
Events   = EXTRACT UserId,Kind,Amount,Fee FROM "events.log" USING E;
PerUser  = SELECT UserId,Kind,Sum(Amount-Fee) AS Net,Count(*) AS N
           FROM Events GROUP BY UserId,Kind;
// Consumer 1: heavy users, ordered report.
Heavy    = SELECT UserId,Sum(Net) AS Total FROM PerUser
           GROUP BY UserId HAVING Total > 2000 ORDER BY UserId;
// Consumer 2: per-kind stats with a computed rate.
Kinds    = SELECT Kind,Sum(Net) AS KindNet,Sum(N) AS KindN
           FROM PerUser GROUP BY Kind;
Rates    = SELECT Kind,KindNet/KindN AS MeanNet FROM Kinds;
// Consumer 3: distinct active kinds per user, unioned with a filtered view.
Active   = SELECT DISTINCT UserId,Kind FROM PerUser;
Frequent = SELECT UserId,Kind FROM PerUser WHERE N > 4;
AllPairs = UNION ALL Active,Frequent;
PairCnt  = SELECT UserId,Count(*) AS Pairs FROM AllPairs GROUP BY UserId;
OUTPUT Heavy   TO "heavy.out";
OUTPUT Rates   TO "rates.out";
OUTPUT PairCnt TO "pairs.out";
)";

}  // namespace

int main() {
  using namespace scx;

  Catalog catalog;
  Status reg = catalog.RegisterLog("events.log",
                                   {"UserId", "Kind", "Amount", "Fee"},
                                   /*row_count=*/30000,
                                   /*distinct_counts=*/{300, 6, 900, 40});
  if (!reg.ok()) return 1;

  OptimizerConfig config;
  config.cluster.machines = 8;
  Engine engine(std::move(catalog), config);

  auto comparison = engine.Compare(kScript);
  if (!comparison.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 comparison.status().ToString().c_str());
    return 1;
  }
  const auto& c = comparison.value();
  std::printf("full-dialect script over one shared aggregate (PerUser):\n");
  std::printf("  conventional cost : %.0f\n", c.conventional.cost());
  std::printf("  CSE cost          : %.0f (%.0f%% saving, %d shared groups)\n",
              c.cse.cost(), (1 - c.cost_ratio) * 100,
              c.cse.result.diagnostics.num_shared_groups);
  std::printf("\nCSE plan:\n%s\n", c.cse.Explain().c_str());

  auto conv = engine.Execute(c.conventional);
  auto cse = engine.Execute(c.cse);
  if (!conv.ok() || !cse.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("identical outputs across plans: %s\n",
              SameOutputs(*conv, *cse) ? "yes" : "NO (bug!)");
  for (const auto& [path, rows] : cse->outputs) {
    std::printf("  %-10s %zu rows\n", path.c_str(), rows.size());
  }
  // Show the ordered report head.
  const auto& heavy = cse->outputs.at("heavy.out");
  std::printf("\nheavy.out (globally ordered by UserId), first rows:\n");
  for (size_t i = 0; i < heavy.size() && i < 5; ++i) {
    std::printf("  UserId=%lld Total=%lld\n",
                static_cast<long long>(heavy[i][0].as_int()),
                static_cast<long long>(heavy[i][1].as_int()));
  }
  return SameOutputs(*conv, *cse) ? 0 : 1;
}
