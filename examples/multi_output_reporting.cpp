// Reporting-pipeline scenario: one expensive shared aggregate feeds five
// differently-partitioned reports. Demonstrates the introspection API —
// shared-group detection, the property history recorded in phase 1 (paper
// Sec. V), LCA identification (Sec. VI), and the enforcement rounds
// (Sec. VII) — and shows how the chosen covering partitioning serves every
// consumer.

#include <cstdio>

#include "api/engine.h"

namespace {

const char kReporting[] = R"(
Sales   = EXTRACT Day,Store,Product,Amount FROM "sales.log" USING S;
Daily   = SELECT Day,Store,Product,Sum(Amount) AS Total
          FROM Sales GROUP BY Day,Store,Product;
RStore  = SELECT Store,Sum(Total) AS StoreTotal   FROM Daily GROUP BY Store;
RProd   = SELECT Product,Sum(Total) AS ProdTotal  FROM Daily GROUP BY Product;
RDay    = SELECT Day,Sum(Total) AS DayTotal       FROM Daily GROUP BY Day;
RSP     = SELECT Store,Product,Sum(Total) AS T    FROM Daily GROUP BY Store,Product;
RDS     = SELECT Day,Store,Sum(Total) AS T        FROM Daily GROUP BY Day,Store;
OUTPUT RStore TO "by_store.out";
OUTPUT RProd  TO "by_product.out";
OUTPUT RDay   TO "by_day.out";
OUTPUT RSP    TO "by_store_product.out";
OUTPUT RDS    TO "by_day_store.out";
)";

}  // namespace

int main() {
  using namespace scx;

  Catalog catalog;
  Status reg = catalog.RegisterLog("sales.log",
                                   {"Day", "Store", "Product", "Amount"},
                                   /*row_count=*/2000000,
                                   /*distinct_counts=*/{365, 200, 150, 9000});
  if (!reg.ok()) return 1;

  Engine engine(std::move(catalog));
  auto compiled = engine.Compile(kReporting);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
    return 1;
  }
  auto conv = engine.Optimize(*compiled, OptimizerMode::kConventional);
  auto cse = engine.Optimize(*compiled, OptimizerMode::kCse);
  if (!conv.ok() || !cse.ok()) return 1;

  std::printf("five reports over one shared daily aggregate\n");
  std::printf("  conventional cost: %.0f (aggregate computed 5x)\n",
              conv->cost());
  std::printf("  CSE cost:          %.0f (%.0f%% saving)\n\n", cse->cost(),
              100.0 * (1 - cse->cost() / conv->cost()));

  // Introspect the optimizer's CSE state.
  const Optimizer& opt = *cse->optimizer;
  const SharedInfo* info = opt.shared_info();
  for (GroupId s : info->shared_groups()) {
    std::printf("shared group %d:\n", s);
    std::printf("  consumers: %zu, LCA: group %d (%s)\n",
                info->ConsumersOf(s).size(), info->LcaOf(s),
                opt.memo()
                    .group(info->LcaOf(s))
                    .initial_expr()
                    .op->Describe()
                    .c_str());
    const PropertyHistory* history = opt.HistoryOf(s);
    std::printf("  phase-1 property history (%d entries, Sec. V expansion, "
                "ranked by wins):\n",
                history->size());
    int shown = 0;
    const Schema& schema = opt.memo().group(s).schema();
    for (const auto& entry : history->entries()) {
      if (shown++ >= 8) {
        std::printf("    ...\n");
        break;
      }
      std::printf("    %-40s wins=%d\n",
                  entry.props
                      .ToString([&](ColumnId id) { return schema.NameOf(id); })
                      .c_str(),
                  entry.wins);
    }
  }
  std::printf("\nrounds executed: %ld of %ld planned\n",
              cse->result.diagnostics.rounds_executed,
              cse->result.diagnostics.rounds_planned);
  std::printf("\nchosen CSE plan:\n%s", cse->Explain().c_str());
  return 0;
}
