// Quickstart: compile the paper's motivating script (S1), optimize it with
// and without the common-subexpression framework, compare estimated costs,
// and execute both plans on the simulated cluster to confirm they produce
// identical results.

#include <cstdio>

#include "api/engine.h"
#include "workload/paper_scripts.h"

int main() {
  using namespace scx;

  // Optimizer-scale experiment: estimated costs on the calibrated catalog.
  {
    Engine engine(MakePaperCatalog());
    auto comparison = engine.Compare(kScriptS1);
    if (!comparison.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   comparison.status().ToString().c_str());
      return 1;
    }
    const auto& c = comparison.value();
    std::printf("== S1: conventional plan (cost %.0f) ==\n%s\n",
                c.conventional.cost(), c.conventional.Explain().c_str());
    std::printf("== S1: CSE plan (cost %.0f) ==\n%s\n", c.cse.cost(),
                c.cse.Explain().c_str());
    std::printf("cost ratio (CSE / conventional): %.2f  => %.0f%% saving\n\n",
                c.cost_ratio, (1.0 - c.cost_ratio) * 100.0);
  }

  // Execution-scale experiment: run both plans, compare outputs.
  {
    OptimizerConfig config;
    config.cluster.machines = 8;
    Engine engine(MakeExecutionCatalog(), config);
    auto comparison = engine.Compare(kScriptS1);
    if (!comparison.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   comparison.status().ToString().c_str());
      return 1;
    }
    const auto& c = comparison.value();
    auto conv = engine.Execute(c.conventional);
    auto cse = engine.Execute(c.cse);
    if (!conv.ok() || !cse.ok()) {
      std::fprintf(stderr, "execution error: %s %s\n",
                   conv.status().ToString().c_str(),
                   cse.status().ToString().c_str());
      return 1;
    }
    std::printf("executed both plans on the simulated cluster:\n");
    std::printf("  identical outputs: %s\n",
                SameOutputs(*conv, *cse) ? "yes" : "NO (bug!)");
    std::printf("  bytes shuffled: conventional=%lld cse=%lld (%.0f%% less)\n",
                static_cast<long long>(conv->bytes_shuffled),
                static_cast<long long>(cse->bytes_shuffled),
                100.0 * (1.0 - static_cast<double>(cse->bytes_shuffled) /
                                   static_cast<double>(conv->bytes_shuffled)));
    std::printf("  rows extracted: conventional=%lld cse=%lld\n",
                static_cast<long long>(conv->rows_extracted),
                static_cast<long long>(cse->rows_extracted));
  }
  return 0;
}
