// Log-analytics scenario from the paper's introduction: a service log is
// extracted once, aggregated into a session summary, and that summary feeds
// several differently-grouped reports plus a correlation join. The script
// is optimized conventionally and with the CSE framework, both plans run on
// the simulated cluster, and the results are verified identical.

#include <cstdio>

#include "api/engine.h"

namespace {

const char kLogAnalytics[] = R"(
// Raw click log: user, page, region, latency, bytes.
Clicks   = EXTRACT UserId,PageId,Region,LatencyMs,Bytes
           FROM "clicks.log" USING ClickExtractor;
// Sessions: one row per (user, page, region) with traffic totals.
Sessions = SELECT UserId,PageId,Region,Sum(Bytes) AS TotalBytes,
                  Count(*) AS Hits,Avg(LatencyMs) AS MeanLatency
           FROM Clicks GROUP BY UserId,PageId,Region;
// Report 1: per-user traffic.
ByUser   = SELECT UserId,Sum(TotalBytes) AS UserBytes,Sum(Hits) AS UserHits
           FROM Sessions GROUP BY UserId;
// Report 2: per-page traffic.
ByPage   = SELECT PageId,Sum(TotalBytes) AS PageBytes,Max(MeanLatency) AS WorstLatency
           FROM Sessions GROUP BY PageId;
// Report 3: regional rollup per page.
ByRegion = SELECT PageId,Region,Sum(Hits) AS RegionHits
           FROM Sessions GROUP BY PageId,Region;
// Correlate heavy pages with their regional hit counts.
Heavy    = SELECT ByPage.PageId,PageBytes,RegionHits
           FROM ByPage,ByRegion
           WHERE ByPage.PageId=ByRegion.PageId AND PageBytes > 10000;
OUTPUT ByUser   TO "by_user.out";
OUTPUT ByPage   TO "by_page.out";
OUTPUT Heavy    TO "heavy_pages.out";
)";

}  // namespace

int main() {
  using namespace scx;

  Catalog catalog;
  Status reg = catalog.RegisterLog(
      "clicks.log", {"UserId", "PageId", "Region", "LatencyMs", "Bytes"},
      /*row_count=*/60000,
      /*distinct_counts=*/{500, 80, 12, 400, 5000}, /*data_seed=*/7);
  if (!reg.ok()) {
    std::fprintf(stderr, "catalog: %s\n", reg.ToString().c_str());
    return 1;
  }

  OptimizerConfig config;
  config.cluster.machines = 16;
  Engine engine(std::move(catalog), config);

  auto comparison = engine.Compare(kLogAnalytics);
  if (!comparison.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 comparison.status().ToString().c_str());
    return 1;
  }
  const auto& c = comparison.value();
  const auto& d = c.cse.result.diagnostics;

  std::printf("log analytics script:\n");
  std::printf("  shared subexpressions found : %d\n", d.num_shared_groups);
  std::printf("  phase-2 rounds              : %ld\n", d.rounds_executed);
  std::printf("  estimated cost conventional : %.0f\n", c.conventional.cost());
  std::printf("  estimated cost with CSE     : %.0f  (%.0f%% saving)\n",
              c.cse.cost(), (1 - c.cost_ratio) * 100);

  std::printf("\nCSE plan:\n%s\n", c.cse.Explain().c_str());

  auto conv = engine.Execute(c.conventional);
  auto cse = engine.Execute(c.cse);
  if (!conv.ok() || !cse.ok()) {
    std::fprintf(stderr, "execution error: %s %s\n",
                 conv.status().ToString().c_str(),
                 cse.status().ToString().c_str());
    return 1;
  }
  std::printf("execution on the simulated cluster:\n");
  std::printf("  outputs identical  : %s\n",
              SameOutputs(*conv, *cse) ? "yes" : "NO (bug!)");
  for (const auto& [path, rows] : cse->outputs) {
    std::printf("  %-16s : %zu rows\n", path.c_str(), rows.size());
  }
  std::printf("  bytes shuffled     : %lld -> %lld (%.0f%% less)\n",
              static_cast<long long>(conv->bytes_shuffled),
              static_cast<long long>(cse->bytes_shuffled),
              100.0 * (1 - static_cast<double>(cse->bytes_shuffled) /
                               static_cast<double>(conv->bytes_shuffled)));
  std::printf("  log scanned        : %lldx -> %lldx\n",
              static_cast<long long>(conv->rows_extracted / 60000),
              static_cast<long long>(cse->rows_extracted / 60000));
  return SameOutputs(*conv, *cse) ? 0 : 1;
}
