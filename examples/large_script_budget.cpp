// Large-script scenario (paper Sec. VIII): generates an LS1-shaped script
// (101 operators, 4 shared groups), then shows how the optimization budget
// and the three large-script extensions interact — round counts, time, and
// plan quality under tight budgets.

#include <cstdio>

#include "api/engine.h"
#include "workload/large_scripts.h"

int main() {
  using namespace scx;

  GeneratedScript gen = GenerateLargeScript(Ls1Spec());
  std::printf("generated LS1-shaped script: %d operators predicted\n\n",
              gen.predicted_ops);

  struct Config {
    const char* label;
    bool independent;
    bool rank;
    long max_rounds;
  } configs[] = {
      {"all extensions, unlimited rounds", true, true, 1000000},
      {"no independence (Cartesian rounds)", false, true, 1000000},
      {"all extensions, capped at 10 rounds", true, true, 10},
      {"no ranking, capped at 10 rounds", true, false, 10},
  };

  std::printf("%-40s %9s %8s %14s %8s\n", "configuration", "planned", "run",
              "cse cost", "saving");
  for (const Config& c : configs) {
    OptimizerConfig config;
    config.exploit_independent_groups = c.independent;
    config.rank_shared_groups = c.rank;
    config.rank_properties = c.rank;
    config.max_rounds = c.max_rounds;
    Engine engine(gen.catalog, config);
    auto result = engine.Compare(gen.text);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& d = result->cse.result.diagnostics;
    std::printf("%-40s %9ld %8ld %14.0f %7.0f%%\n", c.label,
                d.rounds_planned, d.rounds_executed, result->cse.cost(),
                (1 - result->cost_ratio) * 100);
  }

  std::printf(
      "\nreading the table: without Sec. VIII-A the Cartesian product over\n"
      "all shared-group histories explodes; with it the same best plan is\n"
      "found in a few dozen rounds. Under a hard cap, the Sec. VIII-B/C\n"
      "rankings decide whether the early rounds are the promising ones.\n");
  return 0;
}
